"""Backend-identity tests: the vectorized codec must be byte-identical
to the reference path on every stream, flag, and failure it produces."""

import contextlib
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import term_maps
from repro.compression.bitplane import crc8_table
from repro.compression.codec import (
    CODEC_BACKENDS,
    DEFAULT_CODEC_BACKEND,
    GroupCodec,
    RLEZeroCodec,
    _crc8_bits_bitwise,
    active_codec_backend,
    codec_stats,
    crc8_bits,
    reset_codec_stats,
)
from repro.faults.inject import inject_encoded
from repro.faults.models import BitFlip
from repro.protect.policy import ProtectionPolicy
from repro.protect.stream import read_protected, store_protected


@contextlib.contextmanager
def backend(name):
    """Pin ``REPRO_CODEC_BACKEND`` for the block (hypothesis-safe: no
    function-scoped fixture, restores the prior value on exit)."""
    prior = os.environ.get("REPRO_CODEC_BACKEND")
    os.environ["REPRO_CODEC_BACKEND"] = name
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_CODEC_BACKEND", None)
        else:
            os.environ["REPRO_CODEC_BACKEND"] = prior


def both_backends(fn):
    """Run ``fn()`` under each backend and return the two results."""
    results = []
    for name in CODEC_BACKENDS:
        with backend(name):
            results.append(fn())
    return results


def _outcome(fn):
    """Result or (ValueError-type, message) — so strict failures compare."""
    try:
        return ("ok", fn())
    except ValueError as exc:
        return ("raise", str(exc))


values_st = st.lists(st.integers(-32768, 32767), min_size=0, max_size=200)
unsigned_st = st.lists(st.integers(0, 32767), min_size=0, max_size=200)
sparse_st = st.lists(
    st.one_of(st.just(0), st.integers(-32768, 32767)), min_size=0, max_size=200
)


class TestGroupCodecIdentity:
    @given(
        values=values_st,
        group=st.integers(1, 33),
        checksum=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_signed_streams_byte_identical(self, values, group, checksum):
        codec = GroupCodec(group_size=group, signed=True, checksum=checksum)
        arr = np.array(values, dtype=np.int64)
        ref, vec = both_backends(lambda: codec.encode(arr))
        assert ref.data == vec.data
        assert (ref.bits, ref.values) == (vec.bits, vec.values)
        dec_ref, dec_vec = both_backends(lambda: codec.decode_flagged(ref))
        assert np.array_equal(dec_ref[0], dec_vec[0])
        assert dec_ref[1] == dec_vec[1]

    @given(values=unsigned_st, group=st.sampled_from([4, 16]))
    @settings(max_examples=40, deadline=None)
    def test_unsigned_streams_byte_identical(self, values, group):
        codec = GroupCodec(group_size=group, signed=False)
        arr = np.array(values, dtype=np.int64)
        ref, vec = both_backends(lambda: codec.encode(arr))
        assert ref.data == vec.data
        dec_ref, dec_vec = both_backends(lambda: codec.decode(ref))
        assert np.array_equal(dec_ref, dec_vec)

    @given(
        values=st.lists(st.integers(-32768, 32767), min_size=1, max_size=120),
        checksum=st.booleans(),
        strict=st.booleans(),
        flips=st.lists(st.integers(0, 10_000), min_size=1, max_size=6),
        cut=st.integers(0, 6),
        suspect=st.lists(
            st.tuples(st.integers(0, 2000), st.integers(1, 64)), max_size=3
        ),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_corrupted_streams_agree(
        self, values, checksum, strict, flips, cut, suspect, data
    ):
        """Bit flips, truncated tails, and suspect ranges must produce the
        same decoded arrays, the same flags, and the same strict errors."""
        codec = GroupCodec(group_size=16, signed=True, checksum=checksum)
        encoded = codec.encode(np.array(values, dtype=np.int64))
        raw = bytearray(encoded.data)
        for bit in flips:
            if raw:
                raw[(bit // 8) % len(raw)] ^= 0x80 >> (bit % 8)
        corrupt = type(encoded)(
            data=bytes(raw[: max(0, len(raw) - cut)]),
            bits=encoded.bits,
            values=encoded.values,
        )
        suspect_bits = tuple((lo, lo + span) for lo, span in suspect)
        outcomes = both_backends(
            lambda: _outcome(
                lambda: codec.decode_flagged(
                    corrupt, strict=strict, suspect_bits=suspect_bits
                )
            )
        )
        (kind_ref, res_ref), (kind_vec, res_vec) = outcomes
        assert kind_ref == kind_vec
        if kind_ref == "ok":
            assert np.array_equal(res_ref[0], res_vec[0])
            assert res_ref[1] == res_vec[1]
        else:
            assert res_ref == res_vec


class TestRLEZeroIdentity:
    @given(values=sparse_st)
    @settings(max_examples=60, deadline=None)
    def test_streams_byte_identical(self, values):
        codec = RLEZeroCodec()
        arr = np.array(values, dtype=np.int64)
        ref, vec = both_backends(lambda: codec.encode(arr))
        assert ref.data == vec.data
        assert (ref.bits, ref.values) == (vec.bits, vec.values)
        dec_ref, dec_vec = both_backends(lambda: codec.decode(ref))
        assert np.array_equal(dec_ref, dec_vec)

    @given(
        values=st.lists(
            st.one_of(st.just(0), st.integers(-100, 100)), min_size=1, max_size=120
        ),
        strict=st.booleans(),
        cut=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_truncated_streams_agree(self, values, strict, cut):
        codec = RLEZeroCodec()
        encoded = codec.encode(np.array(values, dtype=np.int64))
        truncated = type(encoded)(
            data=encoded.data[: max(0, len(encoded.data) - cut)],
            bits=encoded.bits,
            values=encoded.values,
        )
        outcomes = both_backends(
            lambda: _outcome(lambda: codec.decode(truncated, strict=strict))
        )
        (kind_ref, res_ref), (kind_vec, res_vec) = outcomes
        assert kind_ref == kind_vec
        if kind_ref == "ok":
            assert np.array_equal(res_ref, res_vec)
        else:
            assert res_ref == res_vec


class TestCRC8:
    @given(bits=st.lists(st.integers(0, 1), max_size=400))
    @settings(max_examples=100, deadline=None)
    def test_table_driven_matches_bitwise(self, bits):
        assert crc8_bits(bits) == _crc8_bits_bitwise(bits)

    def test_table_is_the_shift_register(self):
        table = crc8_table()
        assert len(table) == 256
        assert table[0] == 0
        # One-byte message: LUT pass must equal eight bitwise steps.
        assert crc8_bits([1, 0, 1, 1, 0, 0, 1, 0]) == table[0b10110010]


class TestBackendSelection:
    def test_default_backend(self):
        with backend(""):
            # Empty value falls back to the default rather than erroring.
            os.environ.pop("REPRO_CODEC_BACKEND")
            assert active_codec_backend() == DEFAULT_CODEC_BACKEND

    def test_unknown_backend_raises_at_first_use(self):
        codec = GroupCodec(group_size=16, signed=True)
        encoded = codec.encode(np.arange(8))
        with backend("turbo"):
            with pytest.raises(ValueError, match="REPRO_CODEC_BACKEND"):
                codec.encode(np.arange(8))
            with pytest.raises(ValueError, match="turbo"):
                codec.decode(encoded)

    def test_stats_report_backend_and_counters(self):
        reset_codec_stats()
        codec = GroupCodec(group_size=16, signed=True)
        arr = np.arange(-16, 16)
        with backend("vectorized"):
            codec.decode(codec.encode(arr))
            stats = codec_stats()
            assert stats.backend == "vectorized"
        with backend("reference"):
            codec.encode(arr)
            stats = codec_stats()
            assert stats.backend == "reference"
        assert stats.encodes == 2
        assert stats.decodes == 1
        assert stats.vectorized_calls == 2
        assert stats.reference_calls == 1
        assert stats.decoded_values == arr.size
        reset_codec_stats()
        assert codec_stats().encodes == 0


class TestLowering:
    def test_repeat_evaluations_reuse_lowered_artifacts(self, dncnn_trace):
        layer = dncnn_trace[2]
        term_maps.clear_term_maps()
        term_maps.reset_lowering_stats()
        lowered = term_maps.lower_layer(layer)
        first = (lowered.padded, lowered.raw_terms, lowered.delta_terms)
        computed_once = term_maps.lowering_stats()["computed"]
        # A second evaluation — fresh view, same layer — recomputes nothing.
        again = term_maps.lower_layer(layer)
        second = (again.padded, again.raw_terms, again.delta_terms)
        stats = term_maps.lowering_stats()
        assert stats["computed"] == computed_once
        assert stats["reused"] >= 3
        for a, b in zip(first, second):
            assert a is b
            assert not a.flags.writeable

    def test_group_geometry_memoized(self, dncnn_trace):
        layer = dncnn_trace[2]
        term_maps.clear_term_maps()
        geo = term_maps.lower_layer(layer).group_geometry(16, signed=False)
        assert geo is term_maps.group_geometry(layer, 16, signed=False)

    def test_lower_layer_validates_axis(self, dncnn_trace):
        with pytest.raises(ValueError, match="axis"):
            term_maps.lower_layer(dncnn_trace[0], axis="z")


class TestDownstreamIdentity:
    """The fault injector and protection ladder must behave identically on
    streams from either backend."""

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_inject_encoded_identical(self, seed):
        rng = np.random.default_rng(seed)
        arr = rng.integers(-500, 500, size=96)
        codec = GroupCodec(group_size=16, signed=True, checksum=True)

        def run():
            encoded = codec.encode(arr)
            hit, faults = inject_encoded(
                encoded, 0.01, BitFlip(1), np.random.default_rng(seed)
            )
            decoded, flagged = codec.decode_flagged(hit, strict=False)
            return hit.data, faults, decoded, flagged

        ref, vec = both_backends(run)
        assert ref[0] == vec[0]
        assert ref[1] == vec[1]
        assert np.array_equal(ref[2], vec[2])
        assert ref[3] == vec[3]

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_protected_roundtrip_identical(self, seed):
        rng = np.random.default_rng(seed)
        fmap = rng.integers(0, 800, size=(2, 6, 40))
        policy = ProtectionPolicy(
            "full",
            word_ecc=True,
            stream_ecc=True,
            group_checksum=True,
            keyframe_interval=8,
        )

        def run():
            pmap = store_protected(fmap, policy)
            out, report = read_protected(pmap)
            return pmap.stream.data, out, report.flagged_mask.copy()

        ref, vec = both_backends(run)
        assert ref[0] == vec[0]
        assert np.array_equal(ref[1], vec[1])
        assert np.array_equal(ref[2], vec[2])
