"""Deterministic fault injection for Diffy's storage formats.

The paper's DeltaD16 storage scheme trades per-value independence for
footprint: activations live on- and off-chip as per-group dynamically
sized *deltas*, so a single stored-bit error is no longer confined to one
activation — differential reconstruction accumulates it across the rest
of the row.  This package quantifies that trade-off:

- :mod:`repro.faults.models` — seeded fault models (single/multi
  bit-flip, stuck-at-0/1, burst) over bit streams;
- :mod:`repro.faults.inject` — site-level injectors for raw memory
  words, packed codec streams, and decoded delta maps;
- :mod:`repro.faults.metrics` — end-to-end corruption metrics
  (corrupted values, error-run lengths, max error, PSNR);
- :mod:`repro.faults.campaign` — the rate × site × scheme campaign
  runner behind the ``ext_faults`` experiment, plus the
  protected-vs-unprotected variants (:mod:`repro.protect`) behind
  ``ext_protection``.
"""

from repro.faults.campaign import (
    PROTECTED_CONFIGS,
    SCHEME_SITES,
    CampaignPoint,
    CampaignRow,
    ProtectedPoint,
    ProtectedRow,
    campaign_grid,
    run_campaign,
    run_length_amplification,
    run_protected_campaign,
    summarize_protected,
)
from repro.faults.inject import inject_deltas, inject_encoded, inject_words
from repro.faults.metrics import (
    CorruptionMetrics,
    ErrorAccumulator,
    corruption_metrics,
    error_runs,
)
from repro.faults.models import (
    FAULT_MODELS,
    BitFlip,
    Burst,
    FaultModel,
    StuckAt,
    fault_model,
)

__all__ = [
    "PROTECTED_CONFIGS",
    "SCHEME_SITES",
    "CampaignPoint",
    "CampaignRow",
    "ProtectedPoint",
    "ProtectedRow",
    "campaign_grid",
    "run_campaign",
    "run_length_amplification",
    "run_protected_campaign",
    "summarize_protected",
    "inject_deltas",
    "inject_encoded",
    "inject_words",
    "CorruptionMetrics",
    "ErrorAccumulator",
    "corruption_metrics",
    "error_runs",
    "FAULT_MODELS",
    "BitFlip",
    "Burst",
    "FaultModel",
    "StuckAt",
    "fault_model",
]
