"""Extension experiment: weight-side compression + value prediction.

Every ladder so far prices activations and carries weights as dense
16-bit filters.  This experiment adds the weight axis and the
speculative engine built on it:

- **MSR compaction** — the network's weights are quantile-calibrated to
  INT8 (:mod:`repro.weights.quant`) and compacted by the per-column MSR
  codec (:mod:`repro.weights.msr`): coverage fraction, per-scheme stored
  bits (``Raw16W``/``Raw8W``/``MSR4W``), and a both-backends roundtrip
  smoke, plus a protected round trip through
  :meth:`repro.arch.memory.MemorySystem.read_weight_stream` (SECDED +
  stream checksum composing on weights exactly as on activations).
- **Composed ladders** — Fig 5 footprints and Fig 14 traffic with
  activation x weight scheme pairs ("DeltaD16+MSR4W"), normalized to
  the dense NoCompression+Raw16W corner.
- **Value-prediction tradeoff** — the VP engine's accuracy → cycle-cost
  curve over a threshold sweep: hit fraction, prediction MSE, and mean
  frame cycles versus PRA (disabled ⇒ byte-identical to PRA by
  construction, pinned in the goldens).
- **Serve pricing** — the ratio a compressed weight stream shrinks the
  per-batch weight-load overhead by (the ``weight_stream_s`` serve knob
  prices batches with it when opted in).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.arch.memory import memory_system
from repro.arch.predict import ValuePredictionModel
from repro.arch.sim import DEFAULT_MEMORY, model_for
from repro.compression.footprint import composed_footprints
from repro.compression.traffic import composed_traffic
from repro.experiments.common import format_table, traces_for
from repro.experiments.profiles import Profile, resolve_profile
from repro.models.registry import prepare_model
from repro.utils.rng import DEFAULT_SEED
from repro.weights import MSRCodec, network_int8_weights
from repro.weights.schemes import network_weight_bits

#: Weight schemes priced side by side (Raw16W = the dense status quo).
WEIGHT_SCHEME_NAMES = ("Raw16W", "Raw8W", "MSR4W")

#: Activation x weight cells of the composed Fig 5 / Fig 14 ladders.
COMPOSED_PAIRS = (
    ("NoCompression", "Raw16W"),
    ("DeltaD16", "Raw16W"),
    ("DeltaD16", "Raw8W"),
    ("DeltaD16", "MSR4W"),
)

#: Prediction thresholds swept by the accuracy -> cycle-cost curve.
VP_THRESHOLDS = (0, 1, 2, 4, 8)

#: Misprediction pipeline-flush cost (cycles per missed activation).
VP_RECOVERY_CYCLES = 2

#: Traces averaged by the VP curve (matches the serve layer's clip use).
TRACE_COUNT = 2


@dataclass(frozen=True)
class VPRow:
    """One operating point of the value-prediction tradeoff curve."""

    threshold: int
    hit_fraction: float
    mse: float
    mean_cycles: float
    cycles_vs_pra: float


@dataclass(frozen=True)
class WeightStudyResult:
    """Weight-compression study output, as pinned by the goldens."""

    model: str
    crop: int
    #: Total INT8 weights across the network's conv layers.
    weight_values: int
    #: Adaptive per-column MSR coverage (in-band fraction).
    msr_coverage: float
    #: Vectorized encode/decode reproduced every layer's weights exactly.
    roundtrip_ok: bool
    #: Reference and vectorized backends produced identical bytes.
    backends_identical: bool
    #: SECDED+checksum round trip through ``read_weight_stream`` corrected
    #: an injected single-bit storage fault back to the exact weights.
    memory_roundtrip_ok: bool
    #: Stored bits per weight scheme, summed over layers.
    scheme_bits: dict
    #: Composed Fig 5 footprints, normalized to NoCompression+Raw16W.
    footprints: dict
    #: Composed Fig 14 traffic, normalized to NoCompression+Raw16W.
    traffic: dict
    #: The VP tradeoff curve over ``VP_THRESHOLDS``.
    vp_rows: tuple
    #: Mean frame cycles of plain PRA (the VP engine's substrate).
    pra_mean_cycles: float
    #: Mean frame cycles of the VP engine with prediction disabled.
    vp_disabled_mean_cycles: float
    #: MSR4W batch weight-load time over the dense Raw16W load time.
    serve_overhead_ratio: float

    __golden_properties__ = (
        "coverage_ok",
        "msr_raw8_ratio",
        "msr_below_raw8",
        "composed_delta_msr",
        "vp_hits_monotone",
        "vp_cycles_monotone",
        "vp_disabled_matches_pra",
    )

    @property
    def coverage_ok(self) -> bool:
        """Acceptance bar: >= 95% of weights carried in-band."""
        return self.msr_coverage >= 0.95

    @property
    def msr_raw8_ratio(self) -> float:
        """MSR4W stored bits over Raw8W (the compaction headline)."""
        return self.scheme_bits["MSR4W"] / self.scheme_bits["Raw8W"]

    @property
    def msr_below_raw8(self) -> bool:
        """Acceptance bar: MSR4W measurably below uncompressed INT8."""
        return self.msr_raw8_ratio < 1.0

    @property
    def composed_delta_msr(self) -> float:
        """The DeltaD16+MSR4W cell of the composed traffic ladder."""
        return float(self.traffic["DeltaD16+MSR4W"])

    @property
    def vp_hits_monotone(self) -> bool:
        """Hit fraction is nondecreasing in the prediction threshold."""
        hits = [row.hit_fraction for row in self.vp_rows]
        return all(b >= a for a, b in zip(hits, hits[1:]))

    @property
    def vp_cycles_monotone(self) -> bool:
        """Cycle cost is nonincreasing in the prediction threshold."""
        cycles = [row.mean_cycles for row in self.vp_rows]
        return all(b <= a for a, b in zip(cycles, cycles[1:]))

    @property
    def vp_disabled_matches_pra(self) -> bool:
        """Disabled prediction degenerates to PRA exactly."""
        return self.vp_disabled_mean_cycles == self.pra_mean_cycles


def _mean_frame_cycles(model, traces) -> float:
    """Mean whole-frame cycles of one model over the traces."""
    return float(
        np.mean(
            [
                sum(model.layer_cycles(layer).cycles for layer in trace)
                for trace in traces
            ]
        )
    )


def _roundtrip_checks(
    int_weights: "dict[str, tuple[np.ndarray, int]]", codec: MSRCodec
) -> "tuple[bool, bool]":
    """(every layer roundtrips, backends byte-identical on a sample)."""
    roundtrip_ok = True
    for weights, _scale in int_weights.values():
        encoded = codec.encode(weights)
        if not np.array_equal(codec.decode(encoded), weights):
            roundtrip_ok = False
            break
    sample = next(iter(int_weights.values()))[0]
    prior = os.environ.get("REPRO_CODEC_BACKEND")
    streams = {}
    try:
        for backend in ("reference", "vectorized"):
            os.environ["REPRO_CODEC_BACKEND"] = backend
            streams[backend] = codec.encode(sample)
    finally:
        if prior is None:
            os.environ.pop("REPRO_CODEC_BACKEND", None)
        else:
            os.environ["REPRO_CODEC_BACKEND"] = prior
    backends_identical = (
        streams["reference"].data == streams["vectorized"].data
        and streams["reference"].bits == streams["vectorized"].bits
    )
    return roundtrip_ok, backends_identical


def _memory_roundtrip_ok(sample: np.ndarray) -> bool:
    """Protected weight read: SECDED corrects an injected single flip."""

    def flip_one(codes: np.ndarray) -> np.ndarray:
        corrupted = codes.copy()
        corrupted[min(7, corrupted.size - 1)] ^= 1 << 3
        return corrupted

    mem = memory_system(DEFAULT_MEMORY).with_ecc().with_fault_hook(flip_one)
    protected = MSRCodec(bits=8, max_msr=4, column_size=256, checksum=True)
    values, report = mem.read_weight_stream(sample, protected)
    return (
        np.array_equal(values, sample)
        and report.corrected_words == 1
        and report.flagged_columns == ()
    )


def run(
    model: str = "DnCNN",
    crop: int = 64,
    seed: int = DEFAULT_SEED,
) -> WeightStudyResult:
    """Quantize ``model``'s weights, compact, and sweep the VP curve."""
    net = prepare_model(model, seed)
    traces = traces_for(model, count=TRACE_COUNT, crop=crop, seed=seed)
    int_weights = network_int8_weights(net)
    codec = MSRCodec(bits=8, max_msr=4, column_size=256)

    total = compensated = 0
    for weights, _scale in int_weights.values():
        layout = codec.layout(weights)
        total += int(weights.size)
        compensated += int(layout.comp_counts.sum())
    coverage = 1.0 - compensated / total if total else 1.0

    scheme_bits = {
        name: sum(network_weight_bits(net, name).values())
        for name in WEIGHT_SCHEME_NAMES
    }
    roundtrip_ok, backends_identical = _roundtrip_checks(int_weights, codec)
    sample = next(iter(int_weights.values()))[0]

    footprints = composed_footprints(net, traces, COMPOSED_PAIRS)
    traffic = composed_traffic(net, traces, COMPOSED_PAIRS, crop, crop)

    pra = model_for("PRA")
    pra_cycles = _mean_frame_cycles(pra, traces)
    vp_disabled = ValuePredictionModel(enabled=False)
    vp_rows = []
    for threshold in VP_THRESHOLDS:
        vp = ValuePredictionModel(
            threshold=threshold, recovery_cycles=VP_RECOVERY_CYCLES
        )
        cycles = _mean_frame_cycles(vp, traces)
        stats = [vp.prediction_stats(layer) for trace in traces for layer in trace]
        vp_rows.append(
            VPRow(
                threshold=threshold,
                hit_fraction=float(np.mean([s["hit_fraction"] for s in stats])),
                mse=float(np.mean([s["mse"] for s in stats])),
                mean_cycles=cycles,
                cycles_vs_pra=cycles / pra_cycles,
            )
        )

    mem = memory_system(DEFAULT_MEMORY)
    dense_s = mem.transfer_time_s(scheme_bits["Raw16W"] / 8.0)
    msr_s = mem.transfer_time_s(scheme_bits["MSR4W"] / 8.0)

    return WeightStudyResult(
        model=model,
        crop=crop,
        weight_values=total,
        msr_coverage=coverage,
        roundtrip_ok=roundtrip_ok,
        backends_identical=backends_identical,
        memory_roundtrip_ok=_memory_roundtrip_ok(sample),
        scheme_bits=scheme_bits,
        footprints=footprints,
        traffic=traffic,
        vp_rows=tuple(vp_rows),
        pra_mean_cycles=pra_cycles,
        vp_disabled_mean_cycles=_mean_frame_cycles(vp_disabled, traces),
        serve_overhead_ratio=msr_s / dense_s,
    )


def compute(profile: "Profile | None" = None) -> WeightStudyResult:
    """Profile-scaled entry point for the golden-regression harness."""
    p = resolve_profile(profile)
    return run(
        model=p.pick_models(("DnCNN",))[0],
        crop=p.pick_crop(64),
        seed=p.seed,
    )


def format_result(result: WeightStudyResult) -> str:
    scheme_rows = [
        [
            name,
            f"{result.scheme_bits[name]}",
            f"{result.scheme_bits[name] / result.weight_values:.2f}",
            f"{result.scheme_bits[name] / result.scheme_bits['Raw16W']:.3f}",
        ]
        for name in WEIGHT_SCHEME_NAMES
    ]
    schemes = format_table(
        ["scheme", "stored bits", "bits/weight", "vs Raw16W"],
        scheme_rows,
        title=(
            f"Extension: weight compression over {result.model} "
            f"({result.weight_values} INT8 weights, MSR coverage "
            f"{result.msr_coverage:.4f})"
        ),
    )
    vp_table = format_table(
        ["threshold", "hit frac", "pred MSE", "mean cycles", "vs PRA"],
        [
            [
                f"{row.threshold}",
                f"{row.hit_fraction:.4f}",
                f"{row.mse:.2f}",
                f"{row.mean_cycles:.0f}",
                f"{row.cycles_vs_pra:.3f}",
            ]
            for row in result.vp_rows
        ],
        title=(
            "value-prediction tradeoff (recovery "
            f"{VP_RECOVERY_CYCLES} cycles/miss; disabled == PRA: "
            f"{result.vp_disabled_matches_pra})"
        ),
    )
    lines = [schemes, "", vp_table, ""]
    lines.append("composed ladders (vs NoCompression+Raw16W):")
    for act, wgt in COMPOSED_PAIRS:
        key = f"{act}+{wgt}"
        lines.append(
            f"  {key:24s} footprint {result.footprints[key]:.3f}  "
            f"traffic {result.traffic[key]:.3f}"
        )
    lines.append(
        f"roundtrip ok: {result.roundtrip_ok}; backends identical: "
        f"{result.backends_identical}; protected memory roundtrip: "
        f"{result.memory_roundtrip_ok}; serve weight-load ratio "
        f"{result.serve_overhead_ratio:.3f}x dense"
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
