"""Vectorized per-node serving engine for the fleet simulation.

Semantically this is :class:`repro.serve.service.InferenceService` with
greedy dispatch (``max_wait_s=0``) — same admission, shedding, batching,
state pricing and telemetry, verified request-for-request by the
equivalence tests.  Structurally it is rebuilt around the observation
that a greedy-dispatch node alternates between two homogeneous regimes:

- **idle regime** — a worker is free, the queue is empty (the service
  invariant), and each arrival dispatches immediately as a batch of one.
- **busy window** — all workers are busy until the earliest completion
  at ``t_free``.  Every arrival in ``(now, t_free]`` can only be
  admitted or shed; the queue monotonically grows.  That whole run of
  arrivals is one ``numpy.searchsorted`` slice and one vectorized
  telemetry update instead of per-event heap traffic.

Completions stay discrete (each frees a worker and may dispatch), but
their per-request bookkeeping — latencies, deadline outcomes — is done
on array slices via :meth:`StreamingHistogram.record_values`.

Determinism: the event order reproduces the virtual-clock order of the
reference service (arrivals at a tied timestamp fire before completions,
because the service schedules all arrivals first and the clock breaks
ties by sequence number).  All integer telemetry is bit-identical to the
reference; float aggregates differ only in summation order.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.serve.chaos.schedule import NodeChaos
from repro.serve.chaos.telemetry import ChaosTelemetry
from repro.serve.latency import ServiceTimes
from repro.serve.service import ServeConfig
from repro.serve.state import StateStats, TemporalStateStore
from repro.serve.telemetry import CalibTelemetry, ServeTelemetry
from repro.serve.workload import Request

if TYPE_CHECKING:  # pragma: no cover - typing only; the controller spec
    # is duck-typed (built via .build()) so serve never imports calib.
    from repro.calib.recalibrate import CalibSpec

__all__ = ["ShardStream", "ShardResult", "simulate_shard"]


@dataclass(frozen=True)
class ShardStream:
    """The arrival substream one router pass assigned to one node.

    Columnar (one array per field) so the shard engine can slice busy
    windows without touching Python objects, and so streams pickle
    compactly into pool workers.  ``migrated`` marks requests whose
    session previously lived on another node (router-observed; the
    node's state store independently confirms the cold re-anchor).
    ``scene_cut``/``motion`` carry the per-frame video dynamics of
    :func:`repro.serve.workload.apply_scene_dynamics`; omitting them
    yields the static-pan defaults (no cuts, baseline motion).
    """

    node_id: int
    arrival_s: np.ndarray
    session_id: np.ndarray
    frame_index: np.ndarray
    migrated: np.ndarray
    scene_cut: Optional[np.ndarray] = None
    motion: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = len(self.arrival_s)
        if self.scene_cut is None:
            object.__setattr__(self, "scene_cut", np.zeros(n, dtype=bool))
        if self.motion is None:
            object.__setattr__(self, "motion", np.ones(n, dtype=np.float64))
        lengths = (
            len(self.session_id),
            len(self.frame_index),
            len(self.migrated),
            len(self.scene_cut),
            len(self.motion),
        )
        if any(length != n for length in lengths):
            raise ValueError("ShardStream columns must have equal length")
        if n and bool(np.any(np.diff(self.arrival_s) < 0)):
            raise ValueError("ShardStream arrivals must be sorted by time")

    def __len__(self) -> int:
        return len(self.arrival_s)

    @classmethod
    def from_requests(cls, node_id, requests, migrated=None):
        """Build a stream from :class:`Request` objects (tests, adapters)."""
        reqs = list(requests)
        flags = list(migrated) if migrated is not None else [False] * len(reqs)
        return cls(
            node_id=int(node_id),
            arrival_s=np.array([r.arrival_s for r in reqs], dtype=np.float64),
            session_id=np.array([r.session_id for r in reqs], dtype=np.int64),
            frame_index=np.array([r.frame_index for r in reqs], dtype=np.int64),
            migrated=np.array(flags, dtype=bool),
            scene_cut=np.array([r.scene_cut for r in reqs], dtype=bool),
            motion=np.array([r.motion for r in reqs], dtype=np.float64),
        )

    def requests(self) -> "list[Request]":
        return [
            Request(
                session_id=int(self.session_id[i]),
                frame_index=int(self.frame_index[i]),
                arrival_s=float(self.arrival_s[i]),
                scene_cut=bool(self.scene_cut[i]),
                motion=float(self.motion[i]),
            )
            for i in range(len(self))
        ]


@dataclass
class ShardResult:
    """One node's simulated outcome (telemetry merges across nodes)."""

    node_id: int
    telemetry: ServeTelemetry
    state: StateStats
    routed: int
    migrated_in: int
    chaos: Optional[ChaosTelemetry] = None
    calib: Optional[CalibTelemetry] = None


def simulate_shard(
    stream: ShardStream,
    times: ServiceTimes,
    config: ServeConfig,
    chaos: Optional[NodeChaos] = None,
    calib: "Optional[CalibSpec]" = None,
) -> ShardResult:
    """Serve one node's substream to quiescence (greedy dispatch only).

    With ``chaos`` the node additionally executes its slice of the chaos
    timeline: crash windows shed the queue, kill in-flight batches and
    wipe the temporal state store; degrade windows scale batch service
    times; storage chaos resolves each warm state read to a seeded
    clean/corrected/detected/silent outcome (detected invalidates the
    session, forcing a priced re-anchor).  Without ``chaos`` every code
    path and float is identical to before — the fault-free goldens do
    not move.

    With ``calib`` (a picklable :class:`repro.calib.recalibrate.CalibSpec`)
    the node builds its own precision-calibration controller — its
    decisions are pure functions of frame identity and arrival time, so
    every node observes the identical drift — and runs the control loop
    on every served frame; its counters land in the result's ``calib``
    telemetry.  Table swaps bump the state store's calibration version,
    so resident sessions re-anchor cold (priced as ``reanchors_recal``).
    Without ``calib`` nothing changes.
    """
    if config.max_wait_s != 0.0:
        raise ValueError("the vectorized shard engine requires max_wait_s=0 (greedy dispatch)")
    n = len(stream)
    arr = stream.arrival_s
    sid = stream.session_id
    fidx = stream.frame_index
    cut = stream.scene_cut
    motion = stream.motion
    deadline = arr + config.deadline_s
    telemetry = ServeTelemetry(max_batch=config.max_batch, queue_capacity=config.queue_capacity)
    storage = chaos.storage if chaos is not None else None
    state_bytes = times.state_bytes
    if storage is not None:
        # Protected state is bigger: the ladder's storage overhead
        # inflates each session's resident footprint, so the same byte
        # cap holds fewer warm sessions — protection's capacity cost,
        # charged even at fault rate zero.
        state_bytes = max(1, int(round(times.state_bytes * storage.overhead)))
    state = TemporalStateStore(config.state_capacity_bytes, state_bytes)
    ctel = (
        ChaosTelemetry(duration_s=chaos.duration_s) if chaos is not None else None
    )
    controller = calib.build() if calib is not None else None
    #: session id -> invalidation time, awaiting its next warm serve.
    recovering: "dict[int, float]" = {}
    down = list(chaos.down) if chaos is not None else []
    di = 0  # next crash window index

    idle = config.workers
    queue: "list[int]" = []  # admitted request indices, FIFO via head pointer
    head = 0
    busy: "list[tuple[float, int, np.ndarray]]" = []  # (completion time, seq, batch)
    seq = 0
    i = 0  # next arrival index

    def queued() -> int:
        return len(queue) - head

    def crash(at_s: float) -> None:
        """Lose the node: queue, in-flight work, and temporal state."""
        nonlocal head, idle
        shed = queued()
        head = len(queue)
        killed = sum(len(batch) for _, _, batch in busy)
        busy.clear()
        idle = config.workers
        lost = state.invalidate_all()
        for session in lost:
            recovering.setdefault(session, at_s)
        ctel.on_crash(shed, killed, len(lost))

    def dispatch(now: float) -> bool:
        """Shed expired, then dispatch one batch; False if queue drained."""
        nonlocal head, idle, seq
        expired = 0
        while head < len(queue) and deadline[queue[head]] < now:
            head += 1
            expired += 1
        if expired:
            telemetry.on_deadline_shed(expired)
        if head >= len(queue):
            return False
        take = min(queued(), config.max_batch)
        batch = np.asarray(queue[head : head + take], dtype=np.int64)
        head += take
        # Price the batch through the state store in FIFO order.  The
        # per-item float accumulation mirrors the reference service
        # exactly, so busy_s stays bit-identical.
        service_s = times.batch_overhead_s
        if controller is not None:
            # Complete any due measured recalibration before pricing the
            # batch (mirrors the reference service's dispatch hook).
            controller.advance(now, state)
        for j in batch:
            s, f = int(sid[j]), int(fidx[j])
            is_cut = bool(cut[j])
            if storage is not None and not is_cut and state.is_warm(s, f):
                outcome = storage.outcome(s, f, now)
                ctel.on_storage(outcome)
                if outcome == "detected":
                    # The ladder flagged the stored state: drop it and
                    # re-anchor rather than serve corrupt output.
                    state.invalidate(s)
                    recovering.setdefault(s, now)
            if ctel is not None:
                before = state.stats.reanchors
            mode = state.serve(s, f, scene_cut=is_cut)
            service_s += times.request_s(mode, float(motion[j]))
            if controller is not None:
                controller.on_frame(now, s, f, float(arr[j]), state)
            if ctel is not None:
                warm = mode == "temporal"
                ctel.on_serve(now, warm, state.stats.reanchors > before)
                if warm and recovering:
                    t0 = recovering.pop(s, None)
                    if t0 is not None:
                        ctel.on_recovery(now - t0)
        if chaos is not None:
            slowdown = chaos.slowdown_at(now)
            if slowdown != 1.0:
                service_s *= slowdown
        idle -= 1
        telemetry.on_batch(take, service_s)
        heapq.heappush(busy, (now + service_s, seq, batch))
        seq += 1
        return True

    while i < n or head < len(queue) or busy:
        t_free = busy[0][0] if busy else math.inf
        t_arr = arr[i] if i < n else math.inf
        if di < len(down) and down[di][0] <= min(t_arr, t_free):
            # The crash fires before any arrival/completion at or past
            # its timestamp (ties break toward the crash): queued and
            # in-flight work at the instant of the crash is lost.
            crash(down[di][0])
            di += 1
            continue
        if t_arr <= t_free:
            if idle > 0:
                # Idle regime: queue is empty (service invariant), so
                # this arrival admits at depth 1 and dispatches at once.
                queue.append(i)
                telemetry.on_arrival(True, queued())
                i += 1
                now = t_arr
                while idle > 0 and head < len(queue):
                    if not dispatch(now):
                        break
            else:
                # Busy window: every arrival up to t_free (inclusive —
                # tied arrivals precede the completion, matching the
                # virtual clock's sequence order) is admitted or shed in
                # one vectorized step.
                stop = int(np.searchsorted(arr, t_free, side="right")) if busy else n
                stop = max(stop, i + 1)
                block = stop - i
                admit = min(config.queue_capacity - queued(), block)
                depth0 = queued()
                queue.extend(range(i, i + admit))
                telemetry.on_arrival_block(
                    np.arange(depth0 + 1, depth0 + admit + 1, dtype=np.int64),
                    block - admit,
                )
                i = stop
        else:
            now, _, batch = heapq.heappop(busy)
            idle += 1
            latencies = now - arr[batch]
            good = int(np.count_nonzero(now <= deadline[batch]))
            telemetry.on_completion_block(latencies, good)
            while idle > 0 and head < len(queue):
                if not dispatch(now):
                    break

    # Crash windows past quiescence still wipe resident state, so the
    # node's crash/lost-session accounting matches its schedule slice
    # regardless of when its arrivals stop.
    while di < len(down):
        crash(down[di][0])
        di += 1

    return ShardResult(
        node_id=stream.node_id,
        telemetry=telemetry,
        state=state.stats,
        routed=n,
        migrated_in=int(np.count_nonzero(stream.migrated)),
        chaos=ctel,
        calib=controller.telemetry if controller is not None else None,
    )
