"""Golden-results regression harness.

Turns every experiment in :mod:`repro.experiments` into a
machine-checkable artifact:

- :mod:`repro.regression.serialize` — canonical JSON for experiment
  results (sorted keys, fixed significant digits, numpy-aware),
- :mod:`repro.regression.goldens` — load/store committed goldens under
  ``goldens/<profile>/<experiment>.json``,
- :mod:`repro.regression.diff` — tolerance-aware comparison with
  per-field-pattern float tolerances and readable reports,
- :mod:`repro.regression.registry` — the experiment id -> compute map,
- ``python -m repro.regression {check,update,list}`` — the CLI gate
  wired into CI (exit 0 clean, 1 mismatch, 2 missing golden).
"""

from repro.regression.diff import Deviation, DiffConfig, ToleranceRule, compare, format_report
from repro.regression.goldens import golden_path, goldens_root, read_golden, write_golden
from repro.regression.registry import EXPERIMENT_SPECS, ExperimentSpec
from repro.regression.serialize import canonical_dumps, to_jsonable

__all__ = [
    "Deviation",
    "DiffConfig",
    "ToleranceRule",
    "compare",
    "format_report",
    "golden_path",
    "goldens_root",
    "read_golden",
    "write_golden",
    "EXPERIMENT_SPECS",
    "ExperimentSpec",
    "canonical_dumps",
    "to_jsonable",
]
