"""Fig 12: per-layer lane-utilization breakdown for Diffy.

Categories as in the paper: useful cycles, idle cycles (cross-lane
synchronization + filter/channel under-utilization), and off-chip stalls.
The paper's qualitative findings to reproduce: first layers are mostly
idle (3 of 16 activation lanes busy; FFDNet excepted thanks to its
15-channel input), last layers are mostly idle (3 of 64 filter lanes),
VDSR is idle-dominated throughout (sparsity-driven sync), and off-chip
stalls appear mainly for FFDNet/JointNet layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.sim import simulate_network
from repro.experiments.common import (
    CI_MODEL_NAMES,
    DEFAULT_DATASET,
    DEFAULT_TRACE_COUNT,
    format_table,
)
from repro.experiments.profiles import Profile, resolve_profile
from repro.utils.rng import DEFAULT_SEED


@dataclass(frozen=True)
class LayerUtilization:
    layer: str
    useful: float
    idle: float
    stall: float


@dataclass(frozen=True)
class Fig12Result:
    #: {network: [per-layer breakdown]}
    networks: dict[str, list[LayerUtilization]]

    def network_useful_mean(self, network: str) -> float:
        layers = self.networks[network]
        return sum(l.useful for l in layers) / len(layers)


def run(
    models: tuple[str, ...] = CI_MODEL_NAMES,
    scheme: str = "DeltaD16",
    memory: str = "DDR4-3200",
    dataset: str = DEFAULT_DATASET,
    trace_count: int = DEFAULT_TRACE_COUNT,
    crop: int | None = None,
    seed: int = DEFAULT_SEED,
) -> Fig12Result:
    networks = {}
    for model in models:
        res = simulate_network(
            model, "Diffy", scheme=scheme, memory=memory,
            dataset_name=dataset, trace_count=trace_count, crop=crop, seed=seed,
        )
        networks[model] = [
            LayerUtilization(
                layer=layer.name,
                useful=layer.useful_fraction,
                idle=layer.idle_fraction,
                stall=layer.stall_fraction,
            )
            for layer in res.layers
        ]
    return Fig12Result(networks=networks)


def compute(profile: Profile | None = None) -> Fig12Result:
    """Profile-scaled entry point for the golden-regression harness."""
    p = resolve_profile(profile)
    return run(
        models=p.pick_models(CI_MODEL_NAMES),
        trace_count=p.trace_count,
        crop=p.crop,
        seed=p.seed,
    )


def format_result(result: Fig12Result) -> str:
    blocks = []
    for network, layers in result.networks.items():
        rows = [
            (
                l.layer,
                f"{l.useful * 100:.0f}%",
                f"{l.idle * 100:.0f}%",
                f"{l.stall * 100:.0f}%",
            )
            for l in layers
        ]
        blocks.append(
            format_table(
                ["layer", "useful", "idle", "stall"],
                rows,
                title=f"Fig 12: Diffy lane utilization — {network}",
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
