"""Calibration-loop smoke benchmark: drift-safety and recovery bounds.

Runs the drift study (:mod:`repro.experiments.ext_drift`) — a Diffy
fleet serving one variable-frame-rate workload while the input gain
ramps away from the profiling distribution — and guards the control
loop's contract, exiting non-zero if any gate fails:

1. **Zero clipped serves** — the adaptive loop never serves a clipped
   value at any drift magnitude (an overflowing layer rides the Raw16
   fallback until the measured recalibration lands), and the raw-width
   policy never clips by construction.
2. **Static clips under drift** — the paper's offline calibration does
   serve clipped values at every drifting magnitude; if it stops, the
   sweep has gone soft and the other gates are vacuous.
3. **Bounded recovery** — every drifting adaptive cell completes at
   least one measured recalibration and stops leaning on per-frame
   fallback within the grace window after the last gain ramp settles.
4. **Traffic stays compressed** — adaptive traffic never reaches
   ``MAX_TRAFFIC_RATIO`` of the raw 16-bit ceiling: healing must not
   quietly degenerate into serving everything wide.

Results land in ``BENCH_calib.json``.  The model/crop/seed default to
the same values as the other serving benchmarks so CI shares one cached
service-time measurement; the profiling pass is cached the same way.

Usage::

    python benchmarks/calib_bench.py [--model IRCNN] [--crop 48] [--full] [--json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import ext_drift  # noqa: E402
from repro.utils.rng import DEFAULT_SEED  # noqa: E402

#: Adaptive traffic must stay strictly under this fraction of the raw
#: 16-bit ceiling at every drift magnitude.  Measured locally the worst
#: adaptive cell sits near 0.83 (IRCNN's profiled widths are wider than
#: DnCNN's to start with, and fallback frames plus recalibrated tables
#: cost some compression on top); 0.93 catches a loop that heals by
#: simply going wide while absorbing crop/seed variation.
MAX_TRAFFIC_RATIO = 0.93

#: Bench magnitude grids.  Distinct from the experiment's: IRCNN's
#: profiled widths carry more headroom than DnCNN's, so the smallest
#: magnitude that reliably clips the static table is higher here.
BENCH_MAGNITUDES = (1.0, 1.8)
BENCH_FULL_MAGNITUDES = (1.0, 2.0, 2.5)


def sweep(model: str, crop: int, seed: int, full: bool) -> dict:
    result = ext_drift.run(
        model=model,
        crop=crop,
        magnitudes=BENCH_FULL_MAGNITUDES if full else BENCH_MAGNITUDES,
        nodes=ext_drift.FULL_NODES if full else ext_drift.CI_NODES,
        seed=seed,
    )
    cells = [
        {
            "mode": c.mode,
            "magnitude": c.magnitude,
            "goodput_rps": c.goodput_rps,
            "warm_fraction": c.warm_fraction,
            "clipped_values_served": c.clipped_values_served,
            "clipped_values_averted": c.clipped_values_averted,
            "trips": c.trips_overflow + c.trips_slack,
            "swaps": c.swaps,
            "recalibrations": c.recalibrations,
            "reanchors_recal": c.reanchors_recal,
            "psnr_db": None if c.psnr_db == float("inf") else c.psnr_db,
            "traffic_ratio_vs_wide": c.traffic_ratio_vs_wide,
        }
        for c in result.cells
    ]
    return {
        "model": model,
        "crop": crop,
        "seed": seed,
        "nodes": result.nodes,
        "modes": list(result.modes),
        "magnitudes": list(result.magnitudes),
        "offered_rps": result.offered_rps,
        "duration_s": result.duration_s,
        "max_traffic_ratio": MAX_TRAFFIC_RATIO,
        "recovery": result.recovery,
        "cells": cells,
    }


def check(result: dict) -> "list[str]":
    failures = []
    for c in result["cells"]:
        if c["mode"] != "static" and c["clipped_values_served"]:
            failures.append(
                f"{c['mode']} served {c['clipped_values_served']} clipped values "
                f"at drift x{c['magnitude']:g}"
            )
    drifting = [m for m in result["magnitudes"] if m > 1.0]
    static = {c["magnitude"]: c for c in result["cells"] if c["mode"] == "static"}
    for m in drifting:
        if not static[m]["clipped_values_served"]:
            failures.append(
                f"static calibration did not clip at drift x{m:g}: the sweep is soft"
            )
    for key, r in result["recovery"].items():
        print(
            f"drift x{key}: {r['recalibrations']} recalibrations, "
            f"{r['reanchors_recal']} swap re-anchors, last fallback bucket "
            f"{r['last_active_bucket']} (deadline {r['recovery_deadline_bucket']})",
            file=sys.stderr,
        )
        if not r["recovered"]:
            failures.append(
                f"adaptive loop failed to recover at drift x{key}: last active "
                f"bucket {r['last_active_bucket']} past deadline "
                f"{r['recovery_deadline_bucket']} ({r['recalibrations']} recalibrations)"
            )
    adaptive = [c for c in result["cells"] if c["mode"] == "adaptive"]
    for c in adaptive:
        print(
            f"adaptive x{c['magnitude']:g}: {c['clipped_values_averted']} averted, "
            f"traffic {100 * c['traffic_ratio_vs_wide']:.1f}% of raw",
            file=sys.stderr,
        )
        if c["traffic_ratio_vs_wide"] >= result["max_traffic_ratio"]:
            failures.append(
                f"adaptive traffic at drift x{c['magnitude']:g} reached "
                f"{c['traffic_ratio_vs_wide']:.3f} of the raw ceiling "
                f"(gate {result['max_traffic_ratio']})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", default="IRCNN")
    parser.add_argument("--crop", type=int, default=48)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--full", action="store_true", help="four magnitudes, four nodes (nightly)"
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_calib.json"),
        help="where to write the result JSON",
    )
    parser.add_argument("--json", action="store_true", help="print the result JSON to stdout")
    args = parser.parse_args(argv)

    result = sweep(args.model, args.crop, args.seed, args.full)
    Path(args.out).write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    failures = check(result)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    if failures:
        print("FAIL:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"ok: wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
