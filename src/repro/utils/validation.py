"""Small argument-validation helpers used across the package.

They raise ``ValueError`` with uniform, descriptive messages so that misuse
of the public API fails loudly and early.
"""

from __future__ import annotations

from typing import Collection, Optional

import numpy as np


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in(name: str, value: object, allowed: Collection) -> None:
    """Raise ``ValueError`` unless ``value`` is a member of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")


def check_axis(name: str, axis: str) -> None:
    """Validate a spatial-delta axis designator ('x' or 'y')."""
    check_in(name, axis, ("x", "y"))


#: Human-readable names for numpy dtype kind codes (error messages).
_KIND_NAMES = {
    "i": "signed integer",
    "u": "unsigned integer",
    "f": "float",
    "b": "bool",
    "c": "complex",
}


def check_dtype(name: str, array: np.ndarray, kinds: str = "iu") -> np.ndarray:
    """Raise ``ValueError`` unless ``array``'s dtype kind is in ``kinds``.

    ``kinds`` is a string of numpy dtype kind codes (``"iu"`` accepts any
    integer dtype).  Inputs that numpy cannot coerce to a uniform array at
    all (ragged lists, mixed types) also fail with ``ValueError``.
    """
    try:
        arr = np.asarray(array)
    except Exception as exc:
        raise ValueError(f"{name} is not array-like: {exc}") from None
    if arr.dtype.kind not in kinds:
        wanted = " or ".join(_KIND_NAMES.get(k, repr(k)) for k in kinds)
        got = _KIND_NAMES.get(arr.dtype.kind, arr.dtype.kind)
        raise ValueError(f"{name} must have {wanted} dtype, got {got} ({arr.dtype})")
    return arr


def check_shape(
    name: str,
    array: np.ndarray,
    ndim: Optional[int] = None,
    min_ndim: Optional[int] = None,
) -> np.ndarray:
    """Raise ``ValueError`` unless ``array``'s rank matches the constraint."""
    arr = np.asarray(array)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have {ndim} dims, got shape {arr.shape}")
    if min_ndim is not None and arr.ndim < min_ndim:
        raise ValueError(f"{name} must have >= {min_ndim} dims, got shape {arr.shape}")
    return arr


def check_finite(name: str, array: np.ndarray) -> np.ndarray:
    """Raise ``ValueError`` if ``array`` contains NaN or infinity.

    Integer arrays pass trivially; float arrays are scanned.
    """
    arr = np.asarray(array)
    if arr.dtype.kind == "f" and arr.size and not np.isfinite(arr).all():
        raise ValueError(f"{name} contains non-finite values (NaN or infinity)")
    return arr
