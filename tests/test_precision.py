"""Tests for profiled and dynamic per-group precision detection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.precision import (
    HEADER_BITS,
    MAX_PRECISION,
    group_precisions,
    profile_network_precisions,
    profiled_precision,
)
from repro.utils.bits import signed_range


class TestProfiledPrecision:
    def test_unsigned_magnitude(self):
        assert profiled_precision([np.array([0, 3, 255])]) == 8

    def test_signed_includes_sign_bit(self):
        assert profiled_precision([np.array([-128, 127])], signed=True) == 8
        assert profiled_precision([np.array([128])], signed=True) == 9

    def test_across_arrays_takes_max(self):
        arrays = [np.array([1]), np.array([1000])]
        assert profiled_precision(arrays) == 10

    def test_clamped_to_max(self):
        assert profiled_precision([np.array([65535])]) == MAX_PRECISION

    def test_rejects_negative_for_unsigned(self):
        with pytest.raises(ValueError):
            profiled_precision([np.array([-1])], signed=False)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            profiled_precision([])
        with pytest.raises(ValueError):
            profiled_precision([np.array([])])

    def test_all_zeros_is_one_bit(self):
        assert profiled_precision([np.zeros(10, dtype=np.int64)]) == 1

    @given(st.lists(st.integers(min_value=0, max_value=32767), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_every_value_fits(self, values):
        p = profiled_precision([np.array(values)])
        assert all(v < 2**p for v in values)


class TestGroupPrecisions:
    def test_per_group_detection(self):
        values = np.array([0] * 16 + [255] * 16 + [3] * 16)
        enc = group_precisions(values, 16)
        assert np.array_equal(enc.precisions, [1, 8, 2])

    def test_header_accounting(self):
        enc = group_precisions(np.zeros(32, dtype=np.int64), 16)
        assert enc.header_bits == 2 * HEADER_BITS
        assert enc.payload_bits == 2 * 16 * 1  # all-zero groups store 1 bit

    def test_tail_group_padded(self):
        enc = group_precisions(np.array([255] * 20), 16)
        assert len(enc.precisions) == 2
        assert enc.values == 32

    def test_signed_widths(self):
        enc = group_precisions(np.array([-1] * 16), 16, signed=True)
        assert enc.precisions[0] == 1  # -1 fits one two's complement bit
        enc2 = group_precisions(np.array([-129] * 16), 16, signed=True)
        assert enc2.precisions[0] == 9

    def test_total_bits(self):
        enc = group_precisions(np.array([255] * 16), 16)
        assert enc.total_bits == 16 * 8 + HEADER_BITS

    def test_empty(self):
        enc = group_precisions(np.array([], dtype=np.int64), 16)
        assert enc.total_bits == 0
        assert enc.mean_precision == 0.0

    def test_group_size_validated(self):
        with pytest.raises(ValueError):
            group_precisions(np.array([1]), 0)

    @given(
        st.lists(st.integers(min_value=-32768, max_value=32767), min_size=1, max_size=80),
        st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=50)
    def test_every_value_fits_its_group_width(self, values, group):
        arr = np.array(values)
        enc = group_precisions(arr, group, signed=True)
        padded = np.zeros(len(enc.precisions) * group, dtype=np.int64)
        padded[: arr.size] = arr
        for g, p in enumerate(enc.precisions):
            lo, hi = signed_range(int(p))
            chunk = padded[g * group : (g + 1) * group]
            assert chunk.min() >= lo and chunk.max() <= hi

    def test_dynamic_never_beats_16b_by_less_than_metadata(self):
        # Worst case (full-width groups) costs the header on top of 16b.
        enc = group_precisions(np.array([32767] * 32), 16)
        assert enc.total_bits == 32 * 15 + 2 * HEADER_BITS  # 32767 needs 15 magnitude bits


class TestNetworkPrecisions:
    def test_profile_matches_layer_ranges(self, dncnn_trace):
        precs = profile_network_precisions([dncnn_trace])
        assert len(precs) == 20
        # All within the plausible Table III band for 16b fixed point.
        assert all(4 <= p <= 16 for p in precs)

    def test_requires_traces(self):
        with pytest.raises(ValueError):
            profile_network_precisions([])
