"""Vectorized bit-plane backend for the bitstream codecs.

The reference codecs in :mod:`repro.compression.codec` pack and unpack
one value at a time through Python-level ``BitWriter``/``BitReader``
loops — correct, legible, and the wall-clock floor under every sweep,
fault campaign, and serving run that touches a packed stream.  This
module implements the same wire formats as whole-array numpy bit-plane
operations:

- **encode** computes every group width at once (:func:`group_precisions`
  is already vectorized), lays out per-group bit offsets with one
  ``cumsum``, scatters header/value/CRC bit planes into a single ``uint8``
  bit array (one scatter per distinct width, of which there are at most
  16), and emits bytes with a single ``np.packbits``;
- **decode** unpacks the stream once with ``np.unpackbits``, walks the
  variable-width group headers with a cheap O(groups) scan (headers are
  data-dependent, values are not), then gathers and combines all payload
  bit planes per distinct width;
- **CRC-8** is computed for every group at once by exploiting the GF(2)
  linearity of the CRC register: the checksum of a message is the XOR of
  per-bit-position contributions (``x^(d+8) mod G``), so a whole width
  class reduces to one masked XOR-reduction over the already-materialized
  value bit planes.

Every function here is property-tested byte-identical to the reference
path — same bytes out of encode, same values/flags/exceptions out of
decode, including lenient decodes of corrupted and truncated streams
(the contract :mod:`repro.faults` and :mod:`repro.protect` rely on).

This module is the low-level backend; callers go through the
:class:`~repro.compression.codec.GroupCodec` /
:class:`~repro.compression.codec.RLEZeroCodec` APIs, which select the
backend via ``REPRO_CODEC_BACKEND``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.compression.schemes import RLE_COUNT_BITS, _RLE_SPAN
from repro.core.precision import HEADER_BITS, group_precisions

__all__ = [
    "CHECKSUM_BITS",
    "CRC8_POLY",
    "crc8_table",
    "crc8_contrib",
    "group_encode",
    "group_decode_flagged",
    "rlez_encode",
    "rlez_decode",
    "unpack_payload",
    "pack_payload",
]

#: Per-group checksum width of the checksummed GroupCodec format (CRC-8,
#: polynomial x^8 + x^2 + x + 1).
CHECKSUM_BITS = 8

#: The CRC-8 generator polynomial (low 8 bits of x^8 + x^2 + x + 1).
CRC8_POLY = 0x07

#: RLEz token width: 4-bit skip count + 16-bit stored value.
RLE_TOKEN_BITS = 16 + RLE_COUNT_BITS

#: Scatter/gather index buffers are chunked to about this many elements so
#: a trace-scale stream never materializes a multi-hundred-MB index matrix.
_INDEX_BUDGET = 1 << 22


def _crc8_shift(crc: int) -> int:
    """Advance the CRC-8 register by one zero input bit."""
    return ((crc << 1) ^ CRC8_POLY) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF


@lru_cache(maxsize=None)
def crc8_table() -> "tuple[int, ...]":
    """The 256-entry byte-wise CRC-8 LUT: ``crc' = table[crc ^ byte]``."""
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = _crc8_shift(crc)
        table.append(crc)
    return tuple(table)


@lru_cache(maxsize=None)
def _crc8_powers(length: int) -> np.ndarray:
    """``POW[d]``: CRC-8 of a single 1 bit followed by ``d`` zero bits.

    ``POW[0]`` is the CRC of the message ``"1"``; appending one more zero
    bit is exactly one register shift, so the table builds iteratively.
    """
    out = np.empty(max(length, 1), dtype=np.uint8)
    crc = _crc8_shift(0x80)  # register after absorbing a lone 1 bit
    for d in range(out.size):
        out[d] = crc
        crc = _crc8_shift(crc)
    out.setflags(write=False)
    return out


@lru_cache(maxsize=None)
def crc8_contrib(length: int) -> np.ndarray:
    """Per-position CRC-8 contributions for a ``length``-bit message.

    ``contrib[i]`` is the CRC of a message of this length whose only set
    bit is position ``i`` (MSB-first).  Because the CRC register is linear
    over GF(2) with zero initialization, the CRC of any message is the
    XOR of the contributions of its set bits — which turns per-group
    checksumming into one vectorized masked XOR-reduction.
    """
    contrib = _crc8_powers(length)[length - 1 :: -1].copy()
    contrib.setflags(write=False)
    return contrib


def _chunked(indices: np.ndarray, span: int) -> Iterator[np.ndarray]:
    """Split a group-index array so index matrices stay within budget."""
    step = max(1, _INDEX_BUDGET // max(span, 1))
    for i in range(0, indices.size, step):
        yield indices[i : i + step]


def _bit_weights(width: int) -> np.ndarray:
    """MSB-first positional weights for combining ``width`` bit planes."""
    return np.int64(1) << np.arange(width - 1, -1, -1, dtype=np.int64)


def _from_twos_complement_array(raw: np.ndarray, width: int) -> np.ndarray:
    sign_bit = np.int64(1) << (width - 1)
    return np.where(raw & sign_bit, raw - (np.int64(1) << width), raw)


# ---------------------------------------------------------------------------
# GroupCodec (RawD/DeltaD wire format)
# ---------------------------------------------------------------------------


def group_encode(
    flat: np.ndarray, group_size: int, signed: bool, checksum: bool
) -> "tuple[bytes, int]":
    """Pack a validated flat int64 stream; returns ``(data, bits)``.

    Byte-identical to the reference ``BitWriter`` path: 4-bit ``width-1``
    header per group, ``group_size`` values at that width (two's
    complement when signed), optional CRC-8 of each group's header+payload
    bits, zero padding to a whole byte.
    """
    enc = group_precisions(flat, group_size, signed=signed)
    widths = np.asarray(enc.precisions, dtype=np.int64)
    n_groups = widths.size
    tail = CHECKSUM_BITS if checksum else 0
    spans = HEADER_BITS + widths * group_size + tail
    offsets = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(spans, out=offsets[1:])
    total_bits = int(offsets[-1])
    bits = np.zeros(total_bits, dtype=np.uint8)
    if n_groups:
        header = widths - 1
        hshift = np.arange(HEADER_BITS - 1, -1, -1, dtype=np.int64)
        hbits = ((header[:, None] >> hshift) & 1).astype(np.uint8)
        hpos = offsets[:-1, None] + np.arange(HEADER_BITS, dtype=np.int64)
        bits[hpos.reshape(-1)] = hbits.reshape(-1)

        padded = np.zeros(n_groups * group_size, dtype=np.int64)
        padded[: flat.size] = flat
        vals = padded.reshape(n_groups, group_size)
        cshift = np.arange(CHECKSUM_BITS - 1, -1, -1, dtype=np.int64)
        for w in map(int, np.unique(widths)):
            sel = np.flatnonzero(widths == w)
            span = group_size * w
            vshift = np.arange(w - 1, -1, -1, dtype=np.int64)
            rel = HEADER_BITS + np.arange(span, dtype=np.int64)
            if checksum:
                contrib = crc8_contrib(HEADER_BITS + span)
                # All groups in a width class share the same header bits,
                # hence the same header contribution to their CRC.
                hdr_crc = 0
                for i in range(HEADER_BITS):
                    if (w - 1) >> (HEADER_BITS - 1 - i) & 1:
                        hdr_crc ^= int(contrib[i])
                vcontrib = contrib[HEADER_BITS:]
            for chunk in _chunked(sel, span):
                raw = vals[chunk]
                if signed:
                    raw = raw & ((np.int64(1) << w) - 1)
                planes = ((raw[..., None] >> vshift) & 1).astype(np.uint8)
                planes = planes.reshape(len(chunk), span)
                pos = offsets[chunk][:, None] + rel
                bits[pos.reshape(-1)] = planes.reshape(-1)
                if checksum:
                    crc = np.bitwise_xor.reduce(planes * vcontrib, axis=1)
                    crc ^= np.uint8(hdr_crc)
                    cbits = ((crc[:, None].astype(np.int64) >> cshift) & 1).astype(
                        np.uint8
                    )
                    cpos = (offsets[chunk] + HEADER_BITS + span)[:, None] + np.arange(
                        CHECKSUM_BITS, dtype=np.int64
                    )
                    bits[cpos.reshape(-1)] = cbits.reshape(-1)
    return np.packbits(bits).tobytes(), total_bits


def group_decode_flagged(
    data: bytes,
    stream_bits: int,
    values: int,
    group_size: int,
    signed: bool,
    checksum: bool,
    strict: bool,
    suspect_bits: "Sequence[tuple[int, int]]" = (),
) -> "tuple[np.ndarray, tuple[int, ...]]":
    """Vectorized twin of ``GroupCodec.decode_flagged`` (post-validation).

    Replicates the reference decoder exactly, including its lenient-mode
    contract on corrupted streams: reads succeed anywhere inside the
    physical byte buffer (padding bits included), exhaustion keeps a
    partial group's values only without checksums, rejected groups
    zero-fill, and a desynchronized stream flags its whole tail while
    keeping the (unverifiable) decoded values of tail groups whose CRC
    happened to pass.
    """
    groups = -(-values // group_size)
    tail = CHECKSUM_BITS if checksum else 0
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    phys = bits.size

    # Header scan: offsets are data-dependent (each group's span depends
    # on its width), so this walk is sequential — but it is O(groups),
    # not O(values x bits), and each step is a handful of int ops on the
    # raw bytes (a 4-bit header straddles at most two of them; the pad
    # byte keeps the straddling read in bounds at the buffer's edge).
    padded = data + b"\x00"
    offsets = np.empty(groups, dtype=np.int64)
    widths = np.empty(groups, dtype=np.int64)
    complete = 0
    eof_bits_read: "Optional[int]" = None
    partial: "Optional[tuple[int, int, int]]" = None  # (offset, width, values read)
    o = 0
    for _g in range(groups):
        if o + HEADER_BITS > phys:
            eof_bits_read = o
            break
        i = o >> 3
        w = (((padded[i] << 8) | padded[i + 1]) >> (12 - (o & 7)) & 0xF) + 1
        payload_end = o + HEADER_BITS + group_size * w
        if payload_end > phys:
            done = (phys - o - HEADER_BITS) // w
            eof_bits_read = o + HEADER_BITS + done * w
            partial = (o, w, done)
            break
        if checksum and payload_end + CHECKSUM_BITS > phys:
            eof_bits_read = payload_end
            break
        offsets[complete] = o
        widths[complete] = w
        o = payload_end + tail
        complete += 1
    bits_read = o if eof_bits_read is None else eof_bits_read

    out = np.zeros((groups, group_size), dtype=np.int64)
    rejected = np.zeros(groups, dtype=bool)
    offs_c = offsets[:complete]
    wids_c = widths[:complete]
    for w in (map(int, np.unique(wids_c)) if complete else ()):
        sel = np.flatnonzero(wids_c == w)
        span = group_size * w
        weights = _bit_weights(w)
        rel = HEADER_BITS + np.arange(span, dtype=np.int64)
        if checksum:
            contrib = crc8_contrib(HEADER_BITS + span)
            hdr_crc = 0
            for i in range(HEADER_BITS):
                if (w - 1) >> (HEADER_BITS - 1 - i) & 1:
                    hdr_crc ^= int(contrib[i])
            vcontrib = contrib[HEADER_BITS:]
            cweights = _bit_weights(CHECKSUM_BITS)
        for chunk in _chunked(sel, span):
            pos = offs_c[chunk][:, None] + rel
            planes = bits[pos.reshape(-1)].reshape(len(chunk), span)
            raw = planes.reshape(len(chunk), group_size, w).astype(np.int64) @ weights
            if signed:
                raw = _from_twos_complement_array(raw, w)
            out[chunk] = raw
            if checksum:
                calc = np.bitwise_xor.reduce(planes * vcontrib, axis=1)
                calc ^= np.uint8(hdr_crc)
                cpos = (offs_c[chunk] + HEADER_BITS + span)[:, None] + np.arange(
                    CHECKSUM_BITS, dtype=np.int64
                )
                stored = bits[cpos.reshape(-1)].reshape(len(chunk), CHECKSUM_BITS)
                stored = stored.astype(np.int64) @ cweights
                rejected[chunk] |= stored != calc

    if checksum and complete and suspect_bits:
        # A group overlapping a known-damaged bit range is rejected even
        # when its CRC-8 happens to pass (the 2^-8 escape path).
        span_end = offs_c + HEADER_BITS + wids_c * group_size + CHECKSUM_BITS
        known_bad = np.zeros(complete, dtype=bool)
        for lo, hi in suspect_bits:
            known_bad |= (offs_c < hi) & (lo < span_end)
        rejected[:complete] |= known_bad

    if strict:
        if checksum and rejected.any():
            g = int(np.flatnonzero(rejected)[0])
            raise ValueError(f"corrupt stream: checksum mismatch in group {g}")
        if eof_bits_read is not None:
            raise ValueError(
                f"corrupt stream: exhausted after {bits_read} of "
                f"{stream_bits} bits"
            )
        if bits_read != stream_bits:
            raise ValueError(f"decoded {bits_read} bits, expected {stream_bits}")

    flagged: "list[int]" = []
    if checksum:
        bad = np.flatnonzero(rejected)
        out[bad] = 0
        flagged = [int(g) for g in bad]
        if eof_bits_read is not None:
            # Every group past the exhaustion point decoded as zeros and
            # is unverifiable — flag the whole remainder.
            flagged.extend(range(complete, groups))
        desynced = eof_bits_read is not None or (
            bool(flagged) and bits_read != stream_bits
        )
        if desynced and flagged:
            flagged = list(range(flagged[0], groups))
    elif partial is not None:
        # Without checksums the hardware unit keeps whatever values it
        # managed to shift in before the stream ran dry.
        start, w, done = partial
        if done:
            weights = _bit_weights(w)
            pos = (
                start
                + HEADER_BITS
                + np.arange(done, dtype=np.int64)[:, None] * w
                + np.arange(w, dtype=np.int64)
            )
            raw = bits[pos.reshape(-1)].reshape(done, w).astype(np.int64) @ weights
            if signed:
                raw = _from_twos_complement_array(raw, w)
            out[complete, :done] = raw
    return out.reshape(-1)[:values].copy(), tuple(flagged)


# ---------------------------------------------------------------------------
# RLEZeroCodec (zero-skipping token format)
# ---------------------------------------------------------------------------


def rlez_encode(flat: np.ndarray) -> "tuple[bytes, int]":
    """Pack a validated flat int64 stream into (skip, value) tokens.

    Byte-identical to the reference path: a nonzero value preceded by
    ``z`` zeros emits ``z // 16`` escape tokens (skip 15, stored zero)
    then ``(z % 16, value)``; trailing zeros emit escape tokens whose
    last carries the remainder.
    """
    n = flat.size
    nz = np.flatnonzero(flat)
    span = _RLE_SPAN + 1
    if nz.size:
        prev = np.empty_like(nz)
        prev[0] = -1
        prev[1:] = nz[:-1]
        gaps = nz - prev - 1
        trailing = n - int(nz[-1]) - 1
    else:
        gaps = np.zeros(0, dtype=np.int64)
        trailing = n
    n_escapes = gaps // span
    n_trail = -(-trailing // span)
    total = int(n_escapes.sum()) + nz.size + n_trail
    if total == 0:
        return b"", 0
    skips = np.full(total, _RLE_SPAN, dtype=np.int64)
    stored = np.zeros(total, dtype=np.int64)
    if nz.size:
        real_idx = np.cumsum(n_escapes + 1) - 1
        skips[real_idx] = gaps % span
        stored[real_idx] = flat[nz]
    if trailing % span:
        skips[-1] = trailing % span - 1
    tokens = (skips << 16) | (stored & 0xFFFF)
    shifts = np.arange(RLE_TOKEN_BITS - 1, -1, -1, dtype=np.int64)
    planes = ((tokens[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(planes.reshape(-1)).tobytes(), total * RLE_TOKEN_BITS


def rlez_decode(
    data: bytes, stream_bits: int, values: int, strict: bool
) -> np.ndarray:
    """Vectorized twin of ``RLEZeroCodec.decode`` (post-validation)."""
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    phys = bits.size
    attempted = -(-stream_bits // RLE_TOKEN_BITS)
    n_tokens = min(attempted, phys // RLE_TOKEN_BITS)
    if n_tokens < attempted and strict:
        start = n_tokens * RLE_TOKEN_BITS
        bits_read = start + RLE_COUNT_BITS if start + RLE_COUNT_BITS <= phys else start
        raise ValueError(
            f"corrupt stream: exhausted after {bits_read} of {stream_bits} bits"
        )
    out = np.zeros(values, dtype=np.int64)
    if n_tokens:
        planes = bits[: n_tokens * RLE_TOKEN_BITS].reshape(n_tokens, RLE_TOKEN_BITS)
        planes = planes.astype(np.int64)
        skips = planes[:, :RLE_COUNT_BITS] @ _bit_weights(RLE_COUNT_BITS)
        vals = _from_twos_complement_array(planes[:, RLE_COUNT_BITS:] @ _bit_weights(16), 16)
        ends = np.cumsum(skips + 1)
        decoded = np.zeros(int(ends[-1]), dtype=np.int64)
        decoded[ends - 1] = vals
        keep = min(values, decoded.size)
        out[:keep] = decoded[:keep]
    return out


# ---------------------------------------------------------------------------
# Shared payload-bit helpers (protect / faults)
# ---------------------------------------------------------------------------


def unpack_payload(data: bytes, stream_bits: int) -> np.ndarray:
    """The payload bits of a packed stream as a 0/1 ``uint8`` array.

    Only the ``stream_bits`` stored bits are exposed — the zero padding
    the encoder adds to reach a whole byte never leaves it.
    """
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))[:stream_bits]


def pack_payload(bits: np.ndarray) -> bytes:
    """Pack a 0/1 bit array back into bytes (zero-padded, MSB first)."""
    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes()
