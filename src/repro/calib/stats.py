"""Compressed per-layer magnitude statistics for online calibration.

The control loop must answer, per layer and per served frame, "how many
values would clip at width ``w`` if the input gain had drifted to
``g``?" — without re-tracing the network in the serve path.  Two facts
make that cheap:

1. **Positive homogeneity.**  For the post-ReLU networks priced here,
   scaling the input brightness/contrast by ``g > 0`` scales every
   layer's activation magnitudes by ``g`` (``relu(g*x) = g*relu(x)``),
   so one scalar gain models a brightness ramp through the whole
   network (:func:`repro.core.precision.drift_values`).
2. **Low magnitude entropy.**  A layer's imap holds few distinct
   magnitudes relative to its size, so the full magnitude distribution
   compresses to a sorted unique-value/count pair a ``searchsorted``
   answers threshold questions against exactly.

:func:`collect_calib_stats` profiles one model over the scene
distributions of :data:`repro.data.synthesis.PROFILES` (disk-cached;
this is the offline pass Table III's profiled precisions come from) and
the resulting :class:`LayerStats` answer the serve-path questions in
microseconds.  All counts are exact integers over the profiling sample
(``frames`` frames), which keeps every downstream golden
byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache import store as cache_store
from repro.core.precision import MAX_PRECISION
from repro.data.video import synthesize_clip
from repro.models.inputs import adapt_input
from repro.models.registry import get_model_spec, prepare_model
from repro.utils import timing
from repro.utils.bits import bits_for_magnitude
from repro.utils.rng import DEFAULT_SEED
from repro.utils.validation import check_positive

__all__ = ["LayerStats", "CalibStats", "collect_calib_stats", "DEFAULT_CALIB_PROFILES"]

#: Scene distributions of the default profiling set — the paper's
#: "nature, city and texture scenes" reading of HD33, with the noisy
#: capture profile standing in for RNI15.
DEFAULT_CALIB_PROFILES: "tuple[str, ...]" = ("nature", "city", "noisy")


def _drifted(mags: np.ndarray, gain: float) -> np.ndarray:
    """Magnitudes after the gain drift (matches ``drift_values`` exactly)."""
    if gain == 1.0:
        return mags
    return np.floor(mags.astype(np.float64) * gain + 0.5).astype(np.int64)


def _width_cap(width: int, signed: bool) -> int:
    """Largest storable magnitude at ``width`` bits."""
    return (1 << (width - 1 if signed else width)) - 1


@dataclass(frozen=True)
class LayerStats:
    """One layer's magnitude distribution under one scene profile.

    Counts are totals over the profiling sample of ``frames`` frames;
    per-frame rates divide by ``frames`` (``sample_values`` is the
    per-frame value count times ``frames``).  ``value_mags`` /
    ``value_counts`` are the sorted unique magnitudes and their counts;
    ``group_mags`` / ``group_counts`` the same for per-16-value group
    maxima (the Dynamic Stripes group geometry).
    """

    name: str
    index: int
    signed: bool
    frames: int
    n_values: int
    n_groups: int
    max_mag: int
    value_mags: np.ndarray
    value_counts: np.ndarray
    group_mags: np.ndarray
    group_counts: np.ndarray

    @property
    def sample_values(self) -> int:
        return self.n_values * self.frames

    @property
    def sample_groups(self) -> int:
        return self.n_groups * self.frames

    def required_width(self, gain: float = 1.0) -> int:
        """Smallest safe storage width at drift gain ``gain``.

        The width a fresh profiling pass over this sample would pick:
        every drifted magnitude fits, so serving at this width clips
        nothing.  Clamped to [1, :data:`MAX_PRECISION`].
        """
        mag = int(_drifted(np.asarray([self.max_mag], dtype=np.int64), gain)[0])
        bits = int(bits_for_magnitude(np.asarray([mag], dtype=np.int64))[0])
        bits += 1 if self.signed else 0
        return int(min(max(bits, 1), MAX_PRECISION))

    def _over_threshold(
        self, mags: np.ndarray, counts: np.ndarray, width: int, gain: float
    ) -> "tuple[np.ndarray, np.ndarray, int]":
        """Drifted magnitudes above the width cap, their counts, the cap."""
        cap = _width_cap(width, self.signed)
        drifted = _drifted(mags, gain)
        idx = int(np.searchsorted(drifted, cap, side="right"))
        return drifted[idx:], counts[idx:], cap

    def clipped_values(self, width: int, gain: float = 1.0) -> int:
        """Values (over the sample) that saturate at ``width`` bits.

        Width :data:`MAX_PRECISION` is the hardware word: by definition
        nothing the datapath can represent clips there (the Raw16 safe
        fallback), so the count is 0.
        """
        if width >= MAX_PRECISION:
            return 0
        _, counts, _ = self._over_threshold(self.value_mags, self.value_counts, width, gain)
        return int(counts.sum())

    def clip_energy(self, width: int, gain: float = 1.0) -> float:
        """Sum of squared clip errors over the sample (PSNR numerator)."""
        if width >= MAX_PRECISION:
            return 0.0
        over, counts, cap = self._over_threshold(
            self.value_mags, self.value_counts, width, gain
        )
        if not len(over):
            return 0.0
        err = (over - cap).astype(np.float64)
        return float((err * err * counts).sum())

    def overflow_groups(self, width: int, gain: float = 1.0) -> int:
        """16-value groups (over the sample) whose max needs > ``width`` bits."""
        if width >= MAX_PRECISION:
            return 0
        _, counts, _ = self._over_threshold(self.group_mags, self.group_counts, width, gain)
        return int(counts.sum())

    def slack_bits(self, width: int, gain: float = 1.0) -> int:
        """Unused top bits when serving this distribution at ``width``."""
        return width - self.required_width(gain)


def _unique_counts(mags: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    values, counts = np.unique(mags, return_counts=True)
    return values.astype(np.int64), counts.astype(np.int64)


def _layer_stats(name: str, index: int, imaps: "list[np.ndarray]") -> LayerStats:
    flats = [np.asarray(m, dtype=np.int64).reshape(-1) for m in imaps]
    signed = any(int(f.min()) < 0 for f in flats if f.size)
    mags = np.concatenate([np.abs(f) for f in flats])
    group_maxes = []
    for f in flats:
        pad = (-f.size) % 16
        g = np.abs(np.concatenate([f, np.zeros(pad, dtype=np.int64)]) if pad else f)
        group_maxes.append(g.reshape(-1, 16).max(axis=1))
    groups = np.concatenate(group_maxes)
    value_mags, value_counts = _unique_counts(mags)
    group_mags, group_counts = _unique_counts(groups)
    return LayerStats(
        name=name,
        index=index,
        signed=signed,
        frames=len(flats),
        n_values=flats[0].size,
        n_groups=len(group_maxes[0]),
        max_mag=int(mags.max()) if mags.size else 0,
        value_mags=value_mags,
        value_counts=value_counts,
        group_mags=group_mags,
        group_counts=group_counts,
    )


@dataclass(frozen=True)
class CalibStats:
    """One model's profiling-pass statistics across scene distributions."""

    model: str
    crop: int
    frames: int
    seed: int
    profiles: "tuple[str, ...]"
    #: profile name -> per-layer stats (Table III layer order).
    per_profile: "dict[str, tuple[LayerStats, ...]]"

    @property
    def n_layers(self) -> int:
        return len(self.per_profile[self.profiles[0]])

    def layers(self, profile: str) -> "tuple[LayerStats, ...]":
        try:
            return self.per_profile[profile]
        except KeyError:
            raise ValueError(
                f"profile {profile!r} was not in the profiling set {self.profiles}"
            ) from None

    def profiled_widths(self) -> "tuple[int, ...]":
        """The offline table: per-layer widths covering the whole
        profiling set at gain 1.0 (the Table III criterion)."""
        return tuple(
            max(self.per_profile[p][i].required_width(1.0) for p in self.profiles)
            for i in range(self.n_layers)
        )


def collect_calib_stats(
    model: str,
    profiles: "tuple[str, ...]" = DEFAULT_CALIB_PROFILES,
    crop: int = 48,
    frames: int = 2,
    seed: int = DEFAULT_SEED,
) -> CalibStats:
    """Profile one model's per-layer magnitude statistics (disk-cached).

    For each scene profile a seeded clip is traced through the quantized
    network and every layer's imap magnitudes are compressed into
    :class:`LayerStats`.  Pure function of its arguments — the offline
    profiling pass the online loop later re-runs in miniature from its
    reservoir.
    """
    check_positive("frames", frames)
    if not profiles:
        raise ValueError("need at least one profiling scene profile")
    return cache_store.fetch_or_compute(
        "calib_stats",
        (model, tuple(profiles), crop, frames, seed),
        lambda: _collect(model, tuple(profiles), crop, frames, seed),
    )


def _collect(
    model: str, profiles: "tuple[str, ...]", crop: int, frames: int, seed: int
) -> CalibStats:
    spec = get_model_spec(model)
    net = prepare_model(model, seed)
    per_profile: "dict[str, tuple[LayerStats, ...]]" = {}
    with timing.timed("calib.collect_stats"):
        for profile in profiles:
            clip = synthesize_clip(frames, crop, crop, profile=profile, seed=seed)
            traces = [net.trace(adapt_input(spec.input_adapter, f)) for f in clip]
            n_layers = len(traces[0])
            per_profile[profile] = tuple(
                _layer_stats(
                    traces[0][i].name,
                    traces[0][i].index,
                    [t[i].imap for t in traces],
                )
                for i in range(n_layers)
            )
    return CalibStats(
        model=model,
        crop=crop,
        frames=frames,
        seed=seed,
        profiles=profiles,
        per_profile=per_profile,
    )
