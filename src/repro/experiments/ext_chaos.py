"""Extension experiment: chaos-under-load — protection ladders × faults.

:mod:`repro.experiments.ext_fleet` asks how a fleet serves when
everything works; this experiment asks what the same fleet does when
things break, which is the question an SLO is actually written about.
One seeded workload (with scene cuts and motion bursts overlaid) runs
under one deterministic chaos timeline — a node crash with restart, a
degraded-node window, and a correlated fault+load burst — while the
grid sweeps the two levers an operator owns:

- **protection ladder** (``none`` → ``ecc`` → ``checksum`` →
  ``keyframe`` → ``full``): how stored temporal state is protected, and
  therefore whether a storage fault is corrected, detected (the session
  re-anchors, paying a cold frame), or served *silently* corrupt;
- **storage fault rate**: per-stored-bit upset rate against each
  engine's resident per-session state.

Every cell executes the identical event timeline (the schedule is keyed
by the grid seed alone), so differences between cells are purely the
ladder's detection/correction behaviour and its storage overhead.  The
reported surfaces are the reliability numbers a postmortem needs:
goodput under chaos per ladder × rate, the detected-vs-silent
corruption split (``full`` must show zero silent), and crash recovery —
the re-anchor spike when a node's state dies and the warm-fraction
climb as sessions re-anchor and go warm again.

All cells are byte-deterministic across cold runs, worker counts, and
codec backends, so the experiment carries ci/full goldens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.sim import HD_RESOLUTION
from repro.experiments.common import format_table
from repro.experiments.profiles import Profile, resolve_profile
from repro.serve.chaos.campaign import (
    ChaosCell,
    ChaosGridResult,
    chaos_grid,
    run_chaos_grid,
)
from repro.serve.chaos.schedule import ChaosSpec, generate_schedule, overload_requests
from repro.serve.latency import measure_service_times
from repro.serve.service import ServeConfig
from repro.serve.workload import WorkloadSpec, apply_scene_dynamics, generate_requests
from repro.utils.rng import DEFAULT_SEED

#: Engines compared under chaos (the paper's baseline vs its design).
CHAOS_ENGINES = ("VAA", "Diffy")

#: Ladder/rate grids per profile scale.
CI_LADDERS = ("none", "full")
FULL_LADDERS = ("none", "ecc", "checksum", "keyframe", "full")
#: Fault rates are chosen above the discreteness floor of the simulation:
#: below ~1e-3 per stored bit a chaos cell sees only a handful of
#: detected reads, and their goodput effect is smaller than one batch's
#: worth of scheduling noise.
CI_RATES = (0.0, 1e-3)
FULL_RATES = (0.0, 1e-3, 3e-3, 1e-2)
CI_NODES = 2
FULL_NODES = 4


@dataclass(frozen=True)
class ChaosStudyResult:
    """The full chaos study (golden-pinned)."""

    model: str
    crop: int
    resolution: tuple
    seed: int
    engines: tuple
    ladders: tuple
    rates: tuple
    nodes: int
    workers: int
    load_factor: float
    frames_per_session: int
    duration_units: float
    duration_s: float
    offered_rps: float
    overload_requests: int
    node_config: ServeConfig
    chaos_template: ChaosSpec
    cells: "tuple[ChaosCell, ...]"

    __golden_properties__ = (
        "goodput_by_ladder",
        "silent_by_ladder",
        "silent_under_full",
        "goodput_monotone_by_ladder",
        "warm_monotone_by_ladder",
        "crash_recovery",
    )

    def cell(self, engine: str, ladder: str, rate: float) -> ChaosCell:
        for c in self.cells:
            if (c.engine, c.ladder) == (engine, ladder) and c.rate == rate:
                return c
        raise KeyError(f"no cell for ({engine!r}, {ladder!r}, {rate})")

    @property
    def goodput_by_ladder(self) -> dict:
        """Diffy goodput per ladder × fault rate — the chaos SLO surface."""
        return {
            ladder: {f"{rate:g}": self.cell("Diffy", ladder, rate).goodput_rps for rate in self.rates}
            for ladder in self.ladders
        }

    @property
    def silent_by_ladder(self) -> dict:
        """Silent corruptions served per ladder, summed over rates/engines."""
        out: dict = {}
        for ladder in self.ladders:
            out[ladder] = sum(c.storage_silent for c in self.cells if c.ladder == ladder)
        return out

    @property
    def silent_under_full(self) -> int:
        """Silent corruptions under the ``full`` ladder — must be zero."""
        return self.silent_by_ladder.get("full", 0)

    @property
    def goodput_monotone_by_ladder(self) -> dict:
        """Whether Diffy goodput degrades monotonically with fault rate.

        Monotone up to one batch's worth of scheduling noise (2% of the
        fault-free goodput): under a binding deadline, shedding a late
        request *before* dispatch can raise good completions slightly,
        so exact monotonicity is not a property even of a perfect
        simulator.  A real regression — goodput recovering by more than
        the discreteness floor as faults increase — still trips this.
        """
        out = {}
        for ladder in self.ladders:
            goodputs = [self.cell("Diffy", ladder, rate).goodput_rps for rate in sorted(self.rates)]
            slack = 0.02 * goodputs[0]
            out[ladder] = all(
                later <= earlier + slack for earlier, later in zip(goodputs, goodputs[1:])
            )
        return out

    @property
    def warm_monotone_by_ladder(self) -> dict:
        """Whether Diffy's warm fraction strictly degrades with fault rate.

        The noise-free monotone signal: every detected fault costs a
        re-anchor, so warm fraction can only fall as the rate rises
        (ladders with no detection stay exactly flat).
        """
        out = {}
        for ladder in self.ladders:
            warm = [self.cell("Diffy", ladder, rate).warm_fraction for rate in sorted(self.rates)]
            out[ladder] = all(
                later <= earlier + 1e-12 for earlier, later in zip(warm, warm[1:])
            )
        return out

    @property
    def crash_recovery(self) -> dict:
        """The crash signature: re-anchor spike, then warm-fraction recovery.

        Read from the fault-free ``full``-ladder Diffy cell so the spike
        is attributable to the node crash alone (no storage re-anchors).
        The crash bucket comes from regenerating the (seed-pinned) chaos
        schedule, not from scanning for a maximum — tail-drain buckets
        and scene-cut churn cannot masquerade as the crash.
        """
        cell = self.cell("Diffy", "full", 0.0)
        schedule = generate_schedule(self.chaos_template, self.duration_s, range(self.nodes))
        reanchor = list(cell.reanchor_by_bucket)
        warm = list(cell.warm_by_bucket)
        cold = list(cell.cold_by_bucket)
        buckets = len(reanchor)

        def bucket(t: float) -> int:
            return min(buckets - 1, max(0, int(t / self.duration_s * buckets)))

        def warm_fraction(lo: int, hi: int) -> float:
            w, c = sum(warm[lo:hi]), sum(cold[lo:hi])
            return w / (w + c) if (w + c) else 0.0

        crash = schedule.crashes[0]
        crash_b = bucket(crash.crash_s)
        restart_b = bucket(crash.restart_s)
        # The re-anchor storm: failed-over sessions re-anchor on the
        # surviving nodes within a frame interval of the crash.
        storm_hi = min(restart_b + 2, buckets - 1)
        storm = sum(reanchor[crash_b:storm_hi])
        before = sum(reanchor[:crash_b]) / crash_b if crash_b else 0.0
        # Recovery window: after the storm, excluding the clamped tail
        # bucket (post-window drain work lands there).
        warm_storm = warm_fraction(crash_b, storm_hi)
        warm_after = warm_fraction(storm_hi, buckets - 1)
        return {
            "crash_bucket": crash_b,
            "restart_bucket": restart_b,
            "reanchors_in_storm": storm,
            "reanchors_per_bucket_before": before,
            "spiked": storm > before * max(1, storm_hi - crash_b),
            "sessions_lost": cell.sessions_lost,
            "sessions_recovered": cell.sessions_recovered,
            "warm_fraction_in_storm": warm_storm,
            "warm_fraction_after": warm_after,
            "recovered": warm_after > warm_storm,
        }


def run(
    model: str = "DnCNN",
    crop: int = 64,
    engines: tuple = CHAOS_ENGINES,
    ladders: tuple = FULL_LADDERS,
    rates: tuple = FULL_RATES,
    nodes: int = FULL_NODES,
    workers: int = 2,
    load_factor: float = 1.15,
    frames_per_session: int = 8,
    duration_units: float = 40.0,
    #: Deadline sized so queueing delay under saturation sits just under
    #: it — the regime where the extra cold serves a fault storm forces
    #: actually move goodput instead of hiding inside queue slack.
    deadline_units: float = 2.5,
    queue_capacity: int = 32,
    resolution: tuple = HD_RESOLUTION,
    seed: int = DEFAULT_SEED,
    max_workers: int = 0,
) -> ChaosStudyResult:
    """Sweep protection ladder × fault rate under one chaos timeline.

    Time constants scale with VAA's measured cold service time (the
    *unit*), as in the serving and fleet studies.  Offered load is sized
    differently: ``load_factor`` × the fleet's cold capacity on the
    *fastest* engine — the differential design the fleet is provisioned
    for.  That puts the Diffy cells at mild saturation, where every
    re-anchor a fault forces (and every request a crash or degrade
    window delays) shows up in goodput; the VAA rows then show what the
    same chaos does to a fleet that cannot hold the load even fault-free.
    """
    if "VAA" not in engines:
        raise ValueError("the chaos study needs VAA (its cold time is the unit)")
    times = measure_service_times(
        model, engines=engines, crop=crop, resolution=resolution, seed=seed
    )
    unit = times["VAA"].cold_s
    provision_s = min(t.cold_s for t in times.values())
    spec = WorkloadSpec(
        duration_s=duration_units * unit,
        session_rate=load_factor * nodes * workers / provision_s / frames_per_session,
        frames_per_session=frames_per_session,
        frame_interval_s=2.0 * unit,
        seed=seed,
    )
    requests = apply_scene_dynamics(
        generate_requests(spec),
        cut_probability=0.02,
        burst_probability=0.05,
        seed=seed,
    )
    template = ChaosSpec(
        fault_model="flip1",
        storage_trials=64,
        crashes=1,
        crash_downtime_s=4.0 * unit,
        degrades=1,
        degrade_len_s=6.0 * unit,
        degrade_slowdown=2.0,
        bursts=1,
        burst_len_s=6.0 * unit,
        burst_fault_mult=10.0,
        burst_load_mult=1.5,
        seed=seed,
    )
    # The burst's overload sessions are part of the offered workload and
    # identical for every cell (the schedule timing depends only on the
    # grid seed, never on the ladder or rate under test).
    schedule = generate_schedule(template, spec.duration_s, range(nodes))
    extra = overload_requests(spec, schedule, first_session_id=10**6)
    merged = sorted(
        list(requests) + extra, key=lambda r: (r.arrival_s, r.session_id, r.frame_index)
    )
    # Capacity for ~48 resident sessions per node: generous enough that
    # eviction churn does not drown the crash's re-anchor storm, tight
    # enough that the protection ladders' storage overhead still costs
    # real residency.
    node_config = ServeConfig(
        workers=workers,
        max_batch=4,
        max_wait_s=0.0,
        queue_capacity=queue_capacity,
        deadline_s=deadline_units * unit,
        state_capacity_bytes=48 * times[engines[0]].state_bytes,
    )
    session_ttl_s = (2.0 * frames_per_session + 8.0) * unit
    grid: ChaosGridResult = run_chaos_grid(
        merged,
        times,
        chaos_grid(engines, ladders, rates),
        template,
        node_config,
        spec.duration_s,
        nodes=nodes,
        session_ttl_s=session_ttl_s,
        seed=seed,
        max_workers=max_workers,
    )
    return ChaosStudyResult(
        model=model,
        crop=crop,
        resolution=tuple(resolution),
        seed=seed,
        engines=tuple(engines),
        ladders=tuple(ladders),
        rates=tuple(float(r) for r in rates),
        nodes=nodes,
        workers=workers,
        load_factor=load_factor,
        frames_per_session=frames_per_session,
        duration_units=duration_units,
        duration_s=spec.duration_s,
        offered_rps=grid.offered_rps,
        overload_requests=len(extra),
        node_config=node_config,
        chaos_template=template,
        cells=grid.cells,
    )


def compute(profile: "Profile | None" = None) -> ChaosStudyResult:
    """Profile-scaled entry point for the golden-regression harness."""
    p = resolve_profile(profile)
    full = p.name == "full"
    return run(
        model=p.pick_models(("DnCNN",))[0],
        crop=p.pick_crop(64),
        ladders=FULL_LADDERS if full else CI_LADDERS,
        rates=FULL_RATES if full else CI_RATES,
        nodes=FULL_NODES if full else CI_NODES,
        seed=p.seed,
    )


def format_result(result: ChaosStudyResult) -> str:
    rows = [
        (
            c.engine,
            c.ladder,
            f"{c.rate:g}",
            f"{c.goodput_rps:.2f}",
            f"{100 * c.warm_fraction:.0f}%",
            str(c.storage_corrected),
            str(c.storage_detected),
            str(c.storage_silent),
            str(c.sessions_recovered),
            f"{c.recovery_p99_ms:.0f}",
        )
        for c in result.cells
    ]
    h, w = result.resolution
    table = format_table(
        [
            "engine",
            "ladder",
            "rate",
            "goodput rps",
            "warm",
            "corrected",
            "detected",
            "silent",
            "recovered",
            "rec p99 ms",
        ],
        rows,
        title=(
            f"Extension: chaos under load — {result.model} at {w}x{h}, "
            f"{result.nodes} nodes, 1 crash + 1 degrade + 1 fault/load burst"
        ),
    )
    recovery = result.crash_recovery
    silent = ", ".join(f"{l}={n}" for l, n in result.silent_by_ladder.items())
    return (
        table
        + f"\n\nsilent corruptions by ladder (all rates): {silent}"
        + "\ncrash recovery (Diffy, full ladder, fault-free): "
        + f"{recovery['reanchors_in_storm']} re-anchors in the storm window "
        + f"(buckets {recovery['crash_bucket']}-{recovery['restart_bucket']}, "
        + f"{recovery['reanchors_per_bucket_before']:.1f}/bucket before), warm fraction "
        + f"{100 * recovery['warm_fraction_in_storm']:.0f}% in the storm -> "
        + f"{100 * recovery['warm_fraction_after']:.0f}% after"
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
