"""Tests for layers, calibration, quantization, and trace capture."""

import numpy as np
import pytest

from repro.models.weights import conv, synth_filter_bank
from repro.nn.fixed_point import INPUT_SCALE, quantize
from repro.nn.layers import (
    AppendConstantChannels,
    Conv2d,
    DepthToSpace,
    GlobalResidualAdd,
    MaxPool2d,
    SpaceToDepth,
    UpsampleNearest,
)
from repro.nn.network import Network, trace_network
from repro.utils.rng import rng_for


def _conv(name="c", cin=3, cout=8, relu=True, sparsity=0.4, **kw):
    gen = rng_for(0, "layer-test", name, cin, cout)
    return conv(gen, name, cin, cout, relu=relu, sparsity=sparsity, **kw)


class TestConv2d:
    def test_same_padding_default(self):
        layer = _conv()
        assert layer.padding == 1
        assert layer.out_shape((3, 20, 20)) == (8, 20, 20)

    def test_dilated_same_padding(self):
        gen = rng_for(0, "dil")
        layer = conv(gen, "d", 4, 4, dilation=3)
        assert layer.padding == 3
        assert layer.out_shape((4, 16, 16)) == (4, 16, 16)
        assert layer.effective_kernel == 7

    def test_out_shape_checks_channels(self):
        with pytest.raises(ValueError, match="expected 3 channels"):
            _conv().out_shape((5, 10, 10))

    def test_weight_shape_validated(self):
        with pytest.raises(ValueError, match="weights shape"):
            Conv2d("bad", 3, 8, 3, np.zeros((8, 3, 5, 5)))

    def test_sparsity_target_validated(self):
        with pytest.raises(ValueError, match="sparsity_target"):
            Conv2d("bad", 3, 8, 3, np.zeros((8, 3, 3, 3)), sparsity_target=1.5)

    def test_forward_int_before_quantize_raises(self):
        layer = _conv()
        with pytest.raises(RuntimeError, match="quantize"):
            layer.forward_int(np.zeros((3, 8, 8), dtype=np.int64), 8)

    def test_bias_fit_hits_sparsity_target(self):
        layer = _conv(sparsity=0.3)
        gen = rng_for(1, "img")
        x = gen.random((3, 40, 40))
        out = layer.calibrate(x)
        sparsity = float((out == 0).mean())
        assert abs(sparsity - 0.3) < 0.05

    def test_int_matches_float_closely(self, tiny_network):
        net, imgs = tiny_network
        out_f = net.forward_float(imgs[0])
        x_int = quantize(imgs[0], INPUT_SCALE)
        out_i, scale = net.forward_int(x_int)
        err = np.abs(out_f - out_i / 2**scale).max()
        # Error accumulates through 3 layers of rounding; stays small.
        assert err < 0.05 * max(np.abs(out_f).max(), 1.0)

    def test_macs_per_window(self):
        assert _conv().macs_per_window() == 3 * 9


class TestReshuffleLayers:
    def test_space_to_depth_shapes(self):
        layer = SpaceToDepth("s", 2)
        assert layer.out_shape((3, 8, 8)) == (12, 4, 4)

    def test_depth_to_space_shapes(self):
        layer = DepthToSpace("d", 2)
        assert layer.out_shape((12, 4, 4)) == (3, 8, 8)

    def test_upsample_shapes(self):
        layer = UpsampleNearest("u", 3)
        assert layer.out_shape((4, 5, 5)) == (4, 15, 15)

    def test_maxpool_int_scale_passthrough(self):
        layer = MaxPool2d("p", 2)
        x = np.arange(16, dtype=np.int64).reshape(1, 4, 4)
        out, scale = layer.forward_int(x, 9)
        assert scale == 9
        assert out.max() == 15

    def test_append_constant_channels(self):
        layer = AppendConstantChannels("n", 2, 0.25)
        out = layer.forward_float(np.zeros((3, 4, 4)))
        assert out.shape == (5, 4, 4)
        assert np.all(out[3:] == 0.25)
        out_i, scale = layer.forward_int(np.zeros((3, 4, 4), dtype=np.int64), 8)
        assert np.all(out_i[3:] == 64)  # 0.25 * 2^8


class TestGlobalResidualAdd:
    def test_requires_bind(self):
        layer = GlobalResidualAdd("r")
        with pytest.raises(RuntimeError, match="bind_input"):
            layer.forward_float(np.zeros((3, 4, 4)))

    def test_adds_input_float(self):
        layer = GlobalResidualAdd("r")
        ref = np.full((3, 4, 4), 2.0)
        layer.bind_input(x_float=ref)
        out = layer.forward_float(np.ones((3, 4, 4)))
        assert np.all(out == 3.0)

    def test_center_crop_on_shrunk_maps(self):
        layer = GlobalResidualAdd("r")
        ref = np.zeros((1, 6, 6))
        ref[0, 2:4, 2:4] = 5.0
        layer.bind_input(x_float=ref)
        out = layer.forward_float(np.zeros((1, 2, 2)))
        assert np.all(out == 5.0)

    def test_int_scale_alignment(self):
        layer = GlobalResidualAdd("r")
        ref = np.full((1, 2, 2), 256, dtype=np.int64)  # 1.0 at scale 8
        layer.bind_input(x_int=ref, scale=8)
        x = np.full((1, 2, 2), 1024, dtype=np.int64)  # 1.0 at scale 10
        out, scale = layer.forward_int(x, 10)
        assert scale == 8
        assert np.all(out == 512)  # 2.0 at scale 8


class TestNetwork:
    def test_layer_counts(self, tiny_network):
        net, _ = tiny_network
        assert net.num_conv_layers == 3
        assert net.num_relu_layers == 2

    def test_out_shape_chain(self, tiny_network):
        net, _ = tiny_network
        assert net.out_shape((3, 32, 32)) == (3, 32, 32)

    def test_requires_calibration_before_int(self):
        gen = rng_for(3, "uncal")
        net = Network("u", [conv(gen, "c", 3, 4)], 3)
        with pytest.raises(RuntimeError, match="calibrate"):
            net.forward_int(np.zeros((3, 8, 8), dtype=np.int64))

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            Network("empty", [], 3)

    def test_calibrate_empty_rejected(self):
        gen = rng_for(4, "cal")
        net = Network("n", [conv(gen, "c", 3, 4)], 3)
        with pytest.raises(ValueError, match="at least one image"):
            net.calibrate([])

    def test_input_shape_checked(self, tiny_network):
        net, _ = tiny_network
        with pytest.raises(ValueError, match="expects"):
            net.forward_float(np.zeros((5, 32, 32)))

    def test_weight_size_accounting(self, tiny_network):
        net, _ = tiny_network
        # conv1: 16*3*9*2, conv2: 16*16*9*2, conv3: 3*16*9*2 bytes
        assert net.total_weight_bytes() == (16 * 3 + 16 * 16 + 3 * 16) * 9 * 2
        assert net.max_layer_filter_bytes() == 16 * 16 * 9 * 2
        assert net.max_filter_bytes() == 16 * 9 * 2


class TestTrace:
    def test_trace_structure(self, tiny_network):
        net, imgs = tiny_network
        trace = net.trace(imgs[0])
        assert len(trace) == 3
        assert trace[0].imap_shape == (3, 32, 32)
        assert trace[1].imap_shape == (16, 32, 32)
        assert trace[2].omap_shape == (3, 32, 32)

    def test_trace_imap_is_previous_omap(self, tiny_network):
        net, imgs = tiny_network
        trace = net.trace(imgs[0])
        assert np.array_equal(trace[1].imap, trace[0].omap)

    def test_trace_post_relu_nonnegative(self, tiny_network):
        net, imgs = tiny_network
        trace = net.trace(imgs[0])
        assert trace[0].omap.min() >= 0
        assert trace[1].omap.min() >= 0

    def test_macs(self, tiny_network):
        net, imgs = tiny_network
        trace = net.trace(imgs[0])
        assert trace[0].macs == 32 * 32 * 16 * 3 * 9

    def test_layer_named(self, tiny_network):
        net, imgs = tiny_network
        trace = net.trace(imgs[0])
        assert trace.layer_named("conv2").index == 1
        with pytest.raises(KeyError):
            trace.layer_named("nope")

    def test_trace_network_helper(self, tiny_network):
        net, imgs = tiny_network
        traces = trace_network(net, imgs)
        assert len(traces) == 2

    def test_padded_imap(self, tiny_network):
        net, imgs = tiny_network
        layer = net.trace(imgs[0])[0]
        padded = layer.padded_imap()
        assert padded.shape == (3, 34, 34)
        assert padded[:, 0, :].max() == 0


class TestSynthFilterBank:
    def test_shape_and_scaling(self):
        gen = rng_for(5, "bank")
        bank = synth_filter_bank(gen, 8, 4, 3, smoothness=0.5)
        assert bank.shape == (8, 4, 3, 3)
        # He scaling: std ~ 1/sqrt(fan_in)
        assert abs(bank.std() - 1 / np.sqrt(36)) < 0.02

    def test_smoothness_bounds(self):
        gen = rng_for(6, "bank")
        with pytest.raises(ValueError):
            synth_filter_bank(gen, 4, 4, 3, smoothness=1.5)
        with pytest.raises(ValueError):
            synth_filter_bank(gen, 4, 4, 3, smoothness=-0.1)

    def test_smoother_banks_are_smoother(self):
        gen1 = rng_for(7, "a")
        gen2 = rng_for(7, "a")
        rough = synth_filter_bank(gen1, 16, 16, 3, smoothness=0.0)
        smooth = synth_filter_bank(gen2, 16, 16, 3, smoothness=0.9)

        def highfreq_energy(bank):
            d = np.diff(bank, axis=-1)
            return float((d**2).mean() / (bank**2).mean())

        assert highfreq_energy(smooth) < highfreq_energy(rough)
