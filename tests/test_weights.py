"""Weight quantization, schemes, ladders, and protected memory reads."""

import numpy as np
import pytest

from repro.arch.memory import memory_system
from repro.compression.footprint import composed_footprints
from repro.compression.traffic import composed_traffic, network_traffic
from repro.models.registry import prepare_model
from repro.nn.shapes import conv_layer_shapes
from repro.utils.bits import signed_range
from repro.weights import (
    MSRCodec,
    msr_coverage,
    network_int8_weights,
    network_weight_bits,
    network_weight_bytes,
    quantize_weights_int8,
    weight_scale_int8,
    weight_scheme,
)


class TestQuantization:
    def test_scale_is_lossless_for_gaussian_weights(self, tiny_network):
        net, _ = tiny_network
        for layer in net.conv_layers:
            ints, scale = quantize_weights_int8(layer.weights)
            lo, hi = signed_range(8)
            assert lo <= ints.min() and ints.max() <= hi
            # Power-of-two scale: dequantization is exact up to half an LSB.
            back = ints / (1 << scale)
            assert np.abs(back - layer.weights.reshape(-1)).max() <= 0.5 / (1 << scale)

    def test_calibration_targets_the_compact_range(self):
        rng = np.random.default_rng(11)
        weights = rng.standard_normal(4096) * 0.05
        ints, _scale = quantize_weights_int8(weights)
        # The quantile calibration parks the bulk of the distribution
        # inside the 5-bit in-band range MSR-4 compacts to.
        assert msr_coverage(ints, bits=8, msr=4) >= 0.95

    def test_zero_weights(self):
        assert weight_scale_int8(np.zeros(16)) == 0
        ints, scale = quantize_weights_int8(np.zeros(16))
        assert scale == 0 and not ints.any()

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError, match="finite"):
            weight_scale_int8(np.array([1.0, np.inf]))

    def test_network_int8_weights_covers_conv_layers(self, tiny_network):
        net, _ = tiny_network
        table = network_int8_weights(net)
        assert set(table) == {layer.name for layer in net.conv_layers}
        for layer in net.conv_layers:
            ints, _scale = table[layer.name]
            assert ints.size == layer.weights.size


class TestWeightSchemes:
    def test_raw16_matches_dense_baseline(self, tiny_network):
        """Raw16W prices exactly the dense filters every ladder charges."""
        net, _ = tiny_network
        bits = network_weight_bits(net, "Raw16W")
        shapes = conv_layer_shapes(net, 32, 32)
        assert sum(bits.values()) == sum(s.weight_bytes * 8 for s in shapes)
        assert network_weight_bytes(net, "Raw16W") == sum(
            s.weight_bytes for s in shapes
        )

    def test_msr_beats_raw8(self, tiny_network):
        net, _ = tiny_network
        raw8 = sum(network_weight_bits(net, "Raw8W").values())
        msr = sum(network_weight_bits(net, "MSR4W").values())
        assert msr < raw8

    def test_unknown_scheme(self):
        with pytest.raises(KeyError, match="MSR4W.*Raw16W|available"):
            weight_scheme("Huffman")

    def test_scheme_accounting_matches_codec(self, tiny_network):
        codec = MSRCodec(bits=8, max_msr=4, column_size=256)
        msr = weight_scheme("MSR4W")
        net, _ = tiny_network
        for layer in net.conv_layers:
            ints, _scale = quantize_weights_int8(layer.weights)
            assert msr.encoded_bits(ints) == codec.encode(ints).bits


class TestComposedLadders:
    def test_baseline_cell_is_unity(self, dncnn_trace):
        net = prepare_model("DnCNN")
        pairs = (("NoCompression", "Raw16W"), ("DeltaD16", "MSR4W"))
        foot = composed_footprints(net, [dncnn_trace], pairs)
        traf = composed_traffic(net, [dncnn_trace], pairs, 32, 32)
        assert foot["NoCompression+Raw16W"] == pytest.approx(1.0)
        assert traf["NoCompression+Raw16W"] == pytest.approx(1.0)
        assert foot["DeltaD16+MSR4W"] < 1.0
        assert traf["DeltaD16+MSR4W"] < 1.0

    def test_weight_axis_orders_composed_cells(self, dncnn_trace):
        net = prepare_model("DnCNN")
        pairs = (
            ("DeltaD16", "Raw16W"),
            ("DeltaD16", "Raw8W"),
            ("DeltaD16", "MSR4W"),
        )
        traf = composed_traffic(net, [dncnn_trace], pairs, 32, 32)
        assert (
            traf["DeltaD16+MSR4W"]
            < traf["DeltaD16+Raw8W"]
            < traf["DeltaD16+Raw16W"]
        )

    def test_network_traffic_default_unchanged(self, dncnn_trace):
        """weight_scheme=None must reproduce the dense pricing exactly."""
        net = prepare_model("DnCNN")
        plain = network_traffic(net, [dncnn_trace], "DeltaD16", 32, 32)
        keyed = network_traffic(
            net, [dncnn_trace], "DeltaD16", 32, 32, weight_scheme=None
        )
        assert plain == keyed
        raw16 = network_traffic(
            net, [dncnn_trace], "DeltaD16", 32, 32, weight_scheme="Raw16W"
        )
        for a, b in zip(plain, raw16):
            assert a.weight_bytes == b.weight_bytes


class TestWeightStreamReads:
    def _weights(self):
        rng = np.random.default_rng(5)
        return np.clip(
            (rng.standard_normal(512) * 6).round(), -127, 127
        ).astype(np.int64)

    def test_clean_roundtrip(self):
        codec = MSRCodec(8, 4, 64, checksum=True)
        mem = memory_system("DDR4-3200")
        values, report = mem.read_weight_stream(self._weights(), codec)
        assert np.array_equal(values, self._weights())
        assert report.corrected_words == 0
        assert report.flagged_columns == ()

    def test_ecc_corrects_single_flip(self):
        codec = MSRCodec(8, 4, 64, checksum=True)

        def flip_one(codes):
            out = codes.copy()
            out[3] ^= 1 << 2
            return out

        mem = memory_system("DDR4-3200").with_ecc().with_fault_hook(flip_one)
        values, report = mem.read_weight_stream(self._weights(), codec)
        assert np.array_equal(values, self._weights())
        assert report.corrected_words == 1
        assert report.detected_words == 0
        assert report.flagged_columns == ()

    def test_ecc_detection_flags_column(self):
        codec = MSRCodec(8, 4, 64, checksum=True)

        def flip_two(codes):
            out = codes.copy()
            out[3] ^= (1 << 2) | (1 << 9)
            return out

        mem = memory_system("DDR4-3200").with_ecc().with_fault_hook(flip_two)
        values, report = mem.read_weight_stream(self._weights(), codec)
        assert report.detected_words == 1
        assert len(report.flagged_columns) >= 1
        # Flagged columns zero-fill — never silent garbage.
        for g in report.flagged_columns:
            assert not values[g * 64 : (g + 1) * 64].any()

    def test_unprotected_fault_caught_by_checksum(self):
        codec = MSRCodec(8, 4, 64, checksum=True)

        def flip_bit(bits):
            out = bits.copy()
            out[40] ^= 1
            return out

        mem = memory_system("DDR4-3200").with_fault_hook(flip_bit)
        _values, report = mem.read_weight_stream(self._weights(), codec)
        assert len(report.flagged_columns) >= 1
        assert report.corrected_words == report.detected_words == 0
