"""The inference service: virtual-clock simulation of serving under load.

:class:`InferenceService` wires the pieces together — an arrival stream
(:mod:`repro.serve.workload`), a bounded queue with dynamic batching
(:mod:`repro.serve.scheduler`), a worker pool whose batch times come
from the cycle-accurate latency model (:mod:`repro.serve.latency`),
per-session temporal state (:mod:`repro.serve.state`), and telemetry
(:mod:`repro.serve.telemetry`) — and runs them on one
:class:`repro.serve.clock.VirtualClock`.

The event loop:

- **arrival** — admit to the queue or shed (queue full = backpressure);
  then try to dispatch.
- **dispatch** — whenever a worker is idle and the batch policy says go
  (full batch, or the oldest request has waited out ``max_wait_s``):
  shed already-expired requests (deadline policy), pull up to
  ``max_batch``, price each request cold/warm via the state store, and
  occupy the worker for ``batch_overhead + sum(request times)``.
- **completion** — free the worker, record per-request latency and
  deadline outcome, dispatch again.

Everything is deterministic: arrivals are pre-generated from a seed and
the loop itself draws no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.serve.chaos.storage import StorageChaos

if TYPE_CHECKING:  # pragma: no cover - typing only; serve never imports
    # calib at runtime (the dependency points the other way).
    from repro.calib.recalibrate import CalibrationController
from repro.serve.chaos.telemetry import ChaosTelemetry
from repro.serve.clock import VirtualClock
from repro.serve.latency import ServiceTimes
from repro.serve.scheduler import (
    BatchPolicy,
    BoundedQueue,
    QueuedRequest,
    batch_ready,
    next_deadline_check,
)
from repro.serve.state import StateStats, TemporalStateStore
from repro.serve.telemetry import ServeTelemetry
from repro.serve.workload import Request
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ServeConfig:
    """Service-side knobs (the things an operator tunes)."""

    workers: int = 2
    max_batch: int = 4
    max_wait_s: float = 0.0
    queue_capacity: int = 16
    #: Latency budget per request; arrival + deadline_s is the drop-dead
    #: time for both queue shedding and goodput accounting.
    deadline_s: float = 1.0
    #: Total bytes of per-session temporal state the service may keep
    #: resident (0 disables temporal serving entirely).
    state_capacity_bytes: int = 0
    #: Optional compressed weight-stream load time replacing the measured
    #: dense per-batch overhead (see :class:`BatchPolicy.weight_stream_s`).
    #: ``None`` keeps every existing golden byte-identical.
    weight_stream_s: Optional[float] = None

    #: Serialized configs predate the knob; omit it until it is set.
    __golden_omit_none__ = ("weight_stream_s",)

    def __post_init__(self) -> None:
        check_positive("workers", self.workers)
        check_positive("queue_capacity", self.queue_capacity)
        check_positive("deadline_s", self.deadline_s)
        if self.state_capacity_bytes < 0:
            raise ValueError(f"state_capacity_bytes must be >= 0, got {self.state_capacity_bytes}")
        # BatchPolicy validates max_batch / max_wait_s / weight_stream_s.
        BatchPolicy(self.max_batch, self.max_wait_s, self.weight_stream_s)


@dataclass(frozen=True)
class ServingReport:
    """Outcome of serving one workload on one engine (golden-friendly)."""

    engine: str
    duration_s: float
    offered_rps: float
    cold_service_s: float
    warm_service_s: float
    batch_overhead_s: float
    metrics: dict
    warm_served: int
    cold_served: int
    state_evictions: int
    state_insertions: int

    __golden_properties__ = ("goodput_rps", "p99_ms", "shed_rate", "warm_fraction")

    @property
    def goodput_rps(self) -> float:
        return float(self.metrics["goodput_rps"])

    @property
    def p99_ms(self) -> float:
        return float(self.metrics["latency_ms"]["p99"])

    @property
    def shed_rate(self) -> float:
        return float(self.metrics["shed_rate"])

    @property
    def warm_fraction(self) -> float:
        served = self.warm_served + self.cold_served
        return self.warm_served / served if served else 0.0


class InferenceService:
    """One engine's simulated service instance.

    ``storage`` attaches storage-fault chaos
    (:class:`repro.serve.chaos.storage.StorageChaos`): each warm state
    read resolves to a seeded clean/corrected/detected/silent outcome,
    detected reads invalidate the session (the next frame re-anchors
    cold), and the ladder's storage overhead inflates each session's
    resident footprint.  Chaos counters land in :attr:`chaos`
    (a :class:`~repro.serve.chaos.telemetry.ChaosTelemetry`, created by
    :meth:`run`); the fault-free telemetry and report are untouched.
    """

    def __init__(
        self,
        times: ServiceTimes,
        config: ServeConfig,
        storage: Optional[StorageChaos] = None,
        calib: "Optional[CalibrationController]" = None,
    ):
        self.times = times
        self.config = config
        self.policy = BatchPolicy(
            config.max_batch, config.max_wait_s, config.weight_stream_s
        )
        self.queue = BoundedQueue(config.queue_capacity)
        state_bytes = times.state_bytes
        if storage is not None:
            state_bytes = max(1, int(round(times.state_bytes * storage.overhead)))
        self.state = TemporalStateStore(config.state_capacity_bytes, state_bytes)
        self.telemetry = ServeTelemetry(
            max_batch=config.max_batch, queue_capacity=config.queue_capacity
        )
        self.clock = VirtualClock()
        self.idle_workers = config.workers
        self._wait_timer = None
        self._storage = storage
        self.chaos: Optional[ChaosTelemetry] = None
        self._recovering: "dict[int, float]" = {}
        #: Precision-calibration control loop (None = uncalibrated run;
        #: the serve path and its goldens are then bit-identical to a
        #: build without the calib package).
        self.calib = calib

    # ---- event handlers --------------------------------------------------

    def _on_arrival(self, request: Request) -> None:
        now = self.clock.now
        item = QueuedRequest(
            request=request,
            admitted_s=now,
            deadline_s=now + self.config.deadline_s,
        )
        admitted = self.queue.offer(item)
        self.telemetry.on_arrival(admitted, len(self.queue))
        if admitted:
            self._try_dispatch()

    def _on_completion(self, batch: "list[QueuedRequest]") -> None:
        now = self.clock.now
        self.idle_workers += 1
        for item in batch:
            latency = now - item.request.arrival_s
            self.telemetry.on_completion(latency, now <= item.deadline_s)
        self._try_dispatch()

    def _on_wait_expiry(self) -> None:
        self._wait_timer = None
        self._try_dispatch()

    # ---- scheduling ------------------------------------------------------

    def _batch_overhead_s(self) -> float:
        """Per-batch fixed cost: one weight-stream load.

        The policy's ``weight_stream_s`` (compressed-weight pricing)
        overrides the measured dense overhead when set; the ``None``
        default reproduces the measured float exactly.
        """
        if self.policy.weight_stream_s is not None:
            return self.policy.weight_stream_s
        return self.times.batch_overhead_s

    def _try_dispatch(self) -> None:
        now = self.clock.now
        while self.idle_workers > 0:
            expired = self.queue.pop_expired(now)
            if expired:
                self.telemetry.on_deadline_shed(len(expired))
            if not batch_ready(self.queue, self.policy, now):
                break
            batch = self.queue.take(self.policy.max_batch)
            service_s = self._batch_overhead_s()
            if self.calib is not None:
                # Complete any due measured recalibration before pricing
                # this batch: every frame below is served entirely under
                # one table generation (the atomic-swap guarantee).
                self.calib.advance(now, self.state)
            for item in batch:
                request = item.request
                sid, fidx = request.session_id, request.frame_index
                if (
                    self.chaos is not None
                    and self._storage is not None
                    and not request.scene_cut
                    and self.state.is_warm(sid, fidx)
                ):
                    outcome = self._storage.outcome(sid, fidx, now)
                    self.chaos.on_storage(outcome)
                    if outcome == "detected":
                        # The ladder flagged the stored state: drop it
                        # and re-anchor instead of serving corrupt output.
                        self.state.invalidate(sid)
                        self._recovering.setdefault(sid, now)
                if self.chaos is not None:
                    reanchors_before = self.state.stats.reanchors
                mode = self.state.serve(sid, fidx, scene_cut=request.scene_cut)
                service_s += self.times.request_s(mode, request.motion)
                if self.calib is not None:
                    self.calib.on_frame(now, sid, fidx, request.arrival_s, self.state)
                if self.chaos is not None:
                    warm = mode == "temporal"
                    self.chaos.on_serve(
                        now, warm, self.state.stats.reanchors > reanchors_before
                    )
                    if warm and self._recovering:
                        invalidated_at = self._recovering.pop(sid, None)
                        if invalidated_at is not None:
                            self.chaos.on_recovery(now - invalidated_at)
            self.idle_workers -= 1
            self.telemetry.on_batch(len(batch), service_s)
            self.clock.schedule(service_s, self._on_completion, batch)
        self._arm_wait_timer()

    def _arm_wait_timer(self) -> None:
        """Keep exactly one timer at the oldest request's wait expiry."""
        if self._wait_timer is not None:
            self._wait_timer.cancel()
            self._wait_timer = None
        expiry = next_deadline_check(self.queue, self.policy)
        if expiry is not None and self.idle_workers > 0:
            self._wait_timer = self.clock.schedule_at(
                max(expiry, self.clock.now), self._on_wait_expiry
            )

    # ---- driver ----------------------------------------------------------

    def run(self, requests: Sequence[Request], duration_s: float) -> ServingReport:
        """Serve a pre-generated arrival stream to quiescence.

        ``duration_s`` is the workload's generation window — the
        normalizer for offered load, goodput and utilization.  The loop
        itself runs until every admitted request has completed or been
        shed, so tail requests are fully accounted.
        """
        check_positive("duration_s", duration_s)
        if self._storage is not None and self.chaos is None:
            self.chaos = ChaosTelemetry(duration_s=float(duration_s))
        for request in requests:
            self.clock.schedule_at(request.arrival_s, self._on_arrival, request)
        self.clock.run()
        # Drain stragglers: requests still queued when arrivals stop can
        # only be waiting on the wait timer; the final timer fires within
        # max_wait_s, so by quiescence the queue is empty.
        stats: StateStats = self.state.stats
        return ServingReport(
            engine=self.times.engine,
            duration_s=float(duration_s),
            offered_rps=len(requests) / duration_s,
            cold_service_s=self.times.cold_s,
            warm_service_s=self.times.warm_s,
            batch_overhead_s=self._batch_overhead_s(),
            metrics=self.telemetry.snapshot(duration_s, self.config.workers),
            warm_served=stats.warm,
            cold_served=stats.cold,
            state_evictions=stats.evictions,
            state_insertions=stats.insertions,
        )


def serve_workload(
    requests: Sequence[Request],
    times: ServiceTimes,
    config: ServeConfig,
    duration_s: Optional[float] = None,
    storage: Optional[StorageChaos] = None,
    calib: "Optional[CalibrationController]" = None,
) -> ServingReport:
    """Convenience wrapper: one service instance, one workload, one report.

    Pass ``storage`` to run under storage-fault chaos, or ``calib`` to
    attach the precision-calibration control loop; callers that need the
    chaos/calibration counters should drive :class:`InferenceService`
    directly (or keep a reference to the controller's telemetry).
    """
    if duration_s is None:
        duration_s = max((r.arrival_s for r in requests), default=0.0) or 1.0
    service = InferenceService(times, config, storage=storage, calib=calib)
    return service.run(requests, duration_s)
