"""Tests for the shared cycle-counting machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import DIFFY_CONFIG, AcceleratorConfig
from repro.arch.cycles import (
    _lane_term_totals_loops,
    _step_term_maxima_loops,
    filter_passes,
    geometry_occupancies,
    lane_term_totals,
    pallet_cycles,
    step_term_maxima,
)


def _cfg(**kw):
    base = dict(name="t", tiles=4, filters_per_tile=16, terms_per_filter=16)
    base.update(kw)
    return AcceleratorConfig(**base)


class TestFilterPasses:
    def test_fits_concurrent(self):
        assert filter_passes(64, _cfg()) == 1

    def test_multiple_passes(self):
        assert filter_passes(128, _cfg()) == 2
        assert filter_passes(65, _cfg()) == 2

    def test_small_k_still_one_pass(self):
        assert filter_passes(3, _cfg()) == 1

    def test_hybrid_splits_rows(self):
        # 3 filters -> 1 group; 4 tiles -> 4 row teams -> quarter passes.
        assert filter_passes(3, _cfg(partition="hybrid")) == pytest.approx(0.25)

    def test_hybrid_64_filters_4_tiles(self):
        # 4 groups on 4 tiles: exactly one pass, no row split.
        assert filter_passes(64, _cfg(partition="hybrid")) == pytest.approx(1.0)

    def test_hybrid_scaled_up(self):
        # 32 tiles, 4 groups -> 8 row teams.
        assert filter_passes(64, _cfg(tiles=32, partition="hybrid")) == pytest.approx(1 / 8)


class TestStepTermMaxima:
    def test_simple_max(self):
        # 2 channels, 3x3 spatial, 1x1 kernel.
        tm = np.zeros((2, 3, 3), dtype=np.int64)
        tm[0, 1, 1] = 5
        tm[1, 1, 1] = 3
        maxima, total = step_term_maxima(tm, 1, 1, 1, 3, 3, brick=16)
        assert maxima.shape == (1, 3, 3)
        assert maxima[0, 1, 1] == 5
        assert total == 8

    def test_steps_counted(self):
        tm = np.zeros((33, 5, 5), dtype=np.int64)
        maxima, _ = step_term_maxima(tm, 3, 1, 1, 3, 3, brick=16)
        assert maxima.shape == (3 * 9, 3, 3)  # ceil(33/16)=3 bricks x 9 taps

    def test_stride_and_dilation(self):
        tm = np.arange(25, dtype=np.int64).reshape(1, 5, 5) % 7
        maxima, _ = step_term_maxima(tm, 2, 2, 2, 2, 2, brick=16)
        assert maxima.shape == (4, 2, 2)
        # window (0,0), tap (1,1) at dilation 2 reads position (2,2).
        assert maxima[3, 0, 0] == tm[0, 2, 2]


class TestLaneTermTotals:
    def test_folding_across_bricks(self):
        # 32 channels fold into 16 lanes: lane c sums channels c and c+16.
        tm = np.ones((32, 3, 3), dtype=np.int64)
        totals, grand = lane_term_totals(tm, 1, 1, 1, 3, 3, brick=16)
        assert totals.shape == (16, 3, 3)
        assert np.all(totals == 2)
        assert grand == totals.sum()

    def test_kernel_taps_accumulate(self):
        tm = np.ones((1, 4, 4), dtype=np.int64)
        totals, _ = lane_term_totals(tm, 3, 1, 1, 2, 2, brick=1)
        assert np.all(totals == 9)

    def test_grand_total_matches_step_sum(self):
        rng = np.random.default_rng(0)
        tm = rng.integers(0, 8, (20, 6, 6))
        _, t1 = lane_term_totals(tm, 3, 1, 1, 4, 4, brick=16)
        _, t2 = step_term_maxima(tm, 3, 1, 1, 4, 4, brick=16)
        assert t1 == t2


class TestPalletCycles:
    def test_lane_sync_max(self):
        totals = np.zeros((16, 1, 16), dtype=np.int64)
        totals[3, 0, 7] = 42
        assert pallet_cycles(totals, 16, "lane") == 42.0

    def test_row_sync_sums_phases(self):
        # Two pallets in a row; phase 0 busy in both -> work adds up.
        totals = np.zeros((16, 1, 32), dtype=np.int64)
        totals[0, 0, 0] = 10
        totals[0, 0, 16] = 20
        assert pallet_cycles(totals, 16, "row") == 30.0

    def test_column_sync(self):
        maxima = np.zeros((2, 1, 16), dtype=np.int64)
        maxima[0, 0, 3] = 4
        maxima[1, 0, 3] = 5
        maxima[0, 0, 9] = 7
        # column 3 total = 9, column 9 total = 7 -> pallet takes 9.
        assert pallet_cycles(maxima, 16, "column") == 9.0

    def test_pallet_sync(self):
        maxima = np.zeros((2, 1, 16), dtype=np.int64)
        maxima[0, 0, 3] = 4
        maxima[1, 0, 9] = 5
        assert pallet_cycles(maxima, 16, "pallet") == 9.0

    def test_tail_pallet_padded(self):
        maxima = np.ones((1, 1, 18), dtype=np.int64)
        # two pallets; the tail pallet runs with 14 idle columns.
        assert pallet_cycles(maxima, 16, "pallet") == 2.0

    def test_unknown_sync(self):
        with pytest.raises(ValueError):
            pallet_cycles(np.zeros((1, 1, 16), dtype=np.int64), 16, "psychic")

    def test_sync_ordering_pessimism(self):
        """lane <= column <= pallet on any data (more sync = more cycles).

        Lane/row operate on lane totals, column/pallet on step maxima; the
        ordering that must always hold is column <= pallet.
        """
        rng = np.random.default_rng(1)
        maxima = rng.integers(0, 8, (9, 4, 32))
        col = pallet_cycles(maxima, 16, "column")
        pal = pallet_cycles(maxima, 16, "pallet")
        assert col <= pal


class TestGeometryOccupancies:
    def _layer(self, cin, cout):
        from tests.conftest import small_trace

        trace = small_trace("DnCNN")
        # Build a synthetic ConvLayerTrace-like record via dataclass replace.
        from dataclasses import replace

        layer = trace[0]
        imap = np.zeros((cin, 4, 4), dtype=np.int64)
        omap = np.zeros((cout, 4, 4), dtype=np.int64)
        return replace(layer, imap=imap, omap=omap, out_channels=cout)

    def test_three_filter_layer_keeps_3_of_64(self):
        layer = self._layer(64, 3)
        filter_occ, _ = geometry_occupancies(layer, DIFFY_CONFIG)
        assert filter_occ == pytest.approx(3 / 64)

    def test_three_channel_layer_keeps_3_of_16_lanes(self):
        layer = self._layer(3, 64)
        _, channel_occ = geometry_occupancies(layer, DIFFY_CONFIG)
        assert channel_occ == pytest.approx(3 / 16)

    def test_full_layer_fully_occupied(self):
        layer = self._layer(64, 64)
        filter_occ, channel_occ = geometry_occupancies(layer, DIFFY_CONFIG)
        assert filter_occ == 1.0
        assert channel_occ == 1.0


#: Randomized layer geometries for the vectorized-vs-loop equivalence
#: guard: channel counts straddling brick boundaries, strides, and the
#: dilated IRCNN-style taps.
geometries = st.tuples(
    st.integers(min_value=1, max_value=40),   # channels
    st.integers(min_value=1, max_value=5),    # kernel
    st.integers(min_value=1, max_value=3),    # stride
    st.integers(min_value=1, max_value=4),    # dilation
    st.integers(min_value=1, max_value=6),    # out_h
    st.integers(min_value=1, max_value=6),    # out_w
    st.sampled_from([4, 16]),                 # brick
    st.integers(min_value=0, max_value=2**32 - 1),  # term-map seed
)


def _random_term_map(seed, c, h, w):
    # Booth term counts of a 16-bit word are 0..8; include the extremes.
    return np.random.default_rng(seed).integers(0, 9, size=(c, h, w)).astype(np.int64)


class TestVectorizedKernelsMatchLoops:
    """The strided-view kernels are drop-in replacements for the loop
    reference implementations — exact equality on every geometry."""

    @settings(max_examples=60, deadline=None)
    @given(geometries)
    def test_step_term_maxima(self, geom):
        c, kernel, stride, dilation, out_h, out_w, brick, seed = geom
        h = (kernel - 1) * dilation + (out_h - 1) * stride + 1
        w = (kernel - 1) * dilation + (out_w - 1) * stride + 1
        tm = _random_term_map(seed, c, h, w)
        maxima, total = step_term_maxima(tm, kernel, stride, dilation, out_h, out_w, brick)
        ref_maxima, ref_total = _step_term_maxima_loops(
            tm, kernel, stride, dilation, out_h, out_w, brick
        )
        assert maxima.shape == ref_maxima.shape
        assert maxima.dtype == ref_maxima.dtype
        assert np.array_equal(maxima, ref_maxima)
        assert total == ref_total

    @settings(max_examples=60, deadline=None)
    @given(geometries)
    def test_lane_term_totals(self, geom):
        c, kernel, stride, dilation, out_h, out_w, brick, seed = geom
        h = (kernel - 1) * dilation + (out_h - 1) * stride + 1
        w = (kernel - 1) * dilation + (out_w - 1) * stride + 1
        tm = _random_term_map(seed, c, h, w)
        totals, total = lane_term_totals(tm, kernel, stride, dilation, out_h, out_w, brick)
        ref_totals, ref_total = _lane_term_totals_loops(
            tm, kernel, stride, dilation, out_h, out_w, brick
        )
        assert totals.shape == ref_totals.shape
        assert np.array_equal(totals, ref_totals)
        assert total == ref_total

    def test_spatial_margin_beyond_kernel_span(self):
        # Real padded imaps are larger than the exact window span; the
        # strided view must respect out_h/out_w, not consume the margin.
        tm = _random_term_map(7, 20, 30, 33)
        for fn, ref in (
            (step_term_maxima, _step_term_maxima_loops),
            (lane_term_totals, _lane_term_totals_loops),
        ):
            got = fn(tm, 3, 1, 1, 10, 12, 16)
            want = ref(tm, 3, 1, 1, 10, 12, 16)
            assert np.array_equal(got[0], want[0]) and got[1] == want[1]

    def test_dilated_ircnn_layer_end_to_end(self, ircnn_trace):
        # IRCNN's mid layers are the dilation-4 extreme in the model zoo;
        # both sync aggregates must agree with the references on a real
        # dilated trace layer, not just synthetic maps.
        layer = max(ircnn_trace, key=lambda l: l.dilation)
        assert layer.dilation > 1
        from repro.arch.term_maps import raw_term_map

        tm = raw_term_map(layer)
        _, out_h, out_w = layer.omap_shape
        args = (layer.kernel, layer.stride, layer.dilation, out_h, out_w, 16)
        got = step_term_maxima(tm, *args)
        want = _step_term_maxima_loops(tm, *args)
        assert np.array_equal(got[0], want[0]) and got[1] == want[1]
        got = lane_term_totals(tm, *args)
        want = _lane_term_totals_loops(tm, *args)
        assert np.array_equal(got[0], want[0]) and got[1] == want[1]

    def test_non_contiguous_input(self):
        base = _random_term_map(3, 24, 12, 12)
        tm = base[::2]  # strided channel view
        got = step_term_maxima(tm, 3, 1, 1, 10, 10, 16)
        want = _step_term_maxima_loops(tm, 3, 1, 1, 10, 10, 16)
        assert np.array_equal(got[0], want[0]) and got[1] == want[1]

    def test_too_small_map_raises(self):
        tm = _random_term_map(1, 4, 4, 4)
        with pytest.raises(ValueError, match="too small"):
            step_term_maxima(tm, 3, 1, 3, 4, 4, 16)
