"""Symmetric INT8 weight quantization tuned for MSR compaction.

The zoo's synthetic filter banks are Gaussian, so a max-calibrated
power-of-two scale parks the bulk of the distribution far below the
INT8 range and wastes the MSR run.  The calibration here instead picks
the largest power-of-two scale that puts a high quantile of |w| at the
edge of the *compact* (``bits - max_msr + 1``-bit) range — the MSR-4
datapath's 5-bit in-band path — then backs off until the absolute max
still fits signed ``bits``-bit losslessly (no clipping; the few
outliers ride the compensation list instead).
"""

from __future__ import annotations

import numpy as np

from repro.nn.fixed_point import round_half_away
from repro.utils.bits import signed_range

__all__ = [
    "msr_coverage",
    "network_int8_weights",
    "quantize_weights_int8",
    "weight_scale_int8",
]

#: Same cap as the layer requantizer's ``_MAX_WEIGHT_SCALE``: beyond 24
#: fractional bits the float32-trained weights carry no information.
_MAX_WEIGHT_SCALE = 24


def weight_scale_int8(
    weights: np.ndarray,
    bits: int = 8,
    compact_bits: int = 5,
    quantile: float = 0.995,
) -> int:
    """Power-of-two scale (bit shift) for lossless signed-``bits`` storage.

    Calibrated so the ``quantile`` of |w| fills the ``compact_bits``
    in-band range, backed off until the absolute max fits ``bits`` —
    quantization never clips; out-of-band weights are the MSR
    compensation path's job.
    """
    w = np.asarray(weights, dtype=np.float64)
    if not np.isfinite(w).all():
        raise ValueError("weights must be finite")
    mags = np.abs(w.reshape(-1))
    if not mags.size or not float(mags.max()):
        return 0
    q = float(np.quantile(mags, quantile))
    hi_compact = signed_range(compact_bits)[1]
    hi_full = signed_range(bits)[1]
    scale = int(np.floor(np.log2(hi_compact / max(q, 1e-12))))
    scale = min(scale, _MAX_WEIGHT_SCALE)
    max_abs = float(mags.max())
    while scale > 0 and round_half_away(np.array([max_abs * (1 << scale)]))[0] > hi_full:
        scale -= 1
    return max(scale, 0)


def quantize_weights_int8(
    weights: np.ndarray, bits: int = 8, compact_bits: int = 5
) -> "tuple[np.ndarray, int]":
    """Quantize float weights to signed ``bits``-bit ints, losslessly.

    Returns ``(int_weights, scale)`` with ``int_weights`` flat ``int64``
    in the signed-``bits`` range (asserted, never clipped).
    """
    scale = weight_scale_int8(weights, bits=bits, compact_bits=compact_bits)
    q = round_half_away(np.asarray(weights, dtype=np.float64) * (1 << scale))
    lo, hi = signed_range(bits)
    if q.size and (int(q.min()) < lo or int(q.max()) > hi):
        raise AssertionError(
            f"calibrated scale {scale} clips weights to [{q.min()}, {q.max()}]"
        )
    return q.reshape(-1), scale


def msr_coverage(int_weights: np.ndarray, bits: int = 8, msr: int = 4) -> float:
    """Fraction of weights whose top ``msr`` bits are a sign run.

    This is the fixed-width coverage figure the related work reports
    (in-band for a ``bits - msr + 1``-bit compact path); the adaptive
    codec's realized coverage is at least as high.
    """
    flat = np.asarray(int_weights, dtype=np.int64).reshape(-1)
    if not flat.size:
        return 1.0
    lo, hi = signed_range(bits - msr + 1)
    return float(((flat >= lo) & (flat <= hi)).mean())


def network_int8_weights(network) -> "dict[str, tuple[np.ndarray, int]]":
    """Per-conv-layer ``(int_weights, scale)`` for a network's filters."""
    return {
        layer.name: quantize_weights_int8(layer.weights)
        for layer in network.conv_layers
    }
