"""Spatial-correlation heatmaps (Fig 2).

Fig 2 visualizes, for one intermediate DnCNN layer on the Barbara image:
(a) the raw imap values, (b) the adjacent-along-X deltas ("it is only
around the edges that deltas peak"), and (c) the per-activation reduction
in effectual terms when the omap is computed differentially.

This module computes the underlying arrays plus the caption statistics
(average terms per activation and per delta).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.booth import booth_terms
from repro.core.deltas import spatial_deltas
from repro.nn.trace import ConvLayerTrace


@dataclass(frozen=True)
class HeatmapData:
    """Arrays behind Fig 2 for one layer (channel-averaged, 2D).

    Attributes
    ----------
    raw:
        Mean |activation| per pixel across channels (Fig 2a).
    delta:
        Mean |delta| per pixel across channels (Fig 2b).
    term_reduction:
        Mean per-pixel reduction in effectual terms, raw minus delta
        (Fig 2c); positive where differential processing saves work,
        negative at hard edges where deltas cost extra terms.
    mean_terms_raw, mean_terms_delta:
        The caption statistics (3.65 and 1.9 in the paper's example).
    """

    raw: np.ndarray
    delta: np.ndarray
    term_reduction: np.ndarray
    mean_terms_raw: float
    mean_terms_delta: float

    @property
    def potential_work_reduction(self) -> float:
        """Raw/delta mean-term ratio ("potential to reduce work by 1.9x")."""
        if self.mean_terms_delta <= 0:
            return float("inf")
        return self.mean_terms_raw / self.mean_terms_delta


def heatmap_data(layer: ConvLayerTrace, axis: str = "x") -> HeatmapData:
    """Compute Fig 2's heatmaps for one traced layer.

    The differential scheme matches the paper's: the first window along
    each row is computed from raw values, all subsequent ones from deltas —
    so the delta/term maps keep raw statistics in their first column.
    """
    imap = layer.imap
    deltas = spatial_deltas(imap, axis=axis)
    terms_raw = booth_terms(imap)
    terms_delta = booth_terms(np.clip(deltas, -(1 << 15), (1 << 15) - 1))
    return HeatmapData(
        raw=np.abs(imap).mean(axis=0),
        delta=np.abs(deltas).mean(axis=0),
        term_reduction=(terms_raw - terms_delta).astype(np.float64).mean(axis=0),
        mean_terms_raw=float(terms_raw.mean()),
        mean_terms_delta=float(terms_delta.mean()),
    )
