"""Fig 3: cumulative distribution of effectual terms per activation/delta.

Measured over all CI-DNNs and datasets; the paper reports 43% raw / 48%
delta sparsity and a delta CDF that dominates the raw CDF.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.terms import TermStats, trace_term_stats
from repro.experiments.common import (
    CI_MODEL_NAMES,
    DEFAULT_DATASET,
    DEFAULT_TRACE_COUNT,
    format_table,
    traces_for,
)
from repro.experiments.profiles import Profile, resolve_profile
from repro.utils.rng import DEFAULT_SEED


@dataclass(frozen=True)
class Fig3Result:
    stats: TermStats
    models: tuple[str, ...]


def run(
    models: tuple[str, ...] = CI_MODEL_NAMES,
    dataset: str = DEFAULT_DATASET,
    trace_count: int = DEFAULT_TRACE_COUNT,
    crop: int | None = None,
    seed: int = DEFAULT_SEED,
) -> Fig3Result:
    """Accumulate term histograms over every model's traces."""
    traces = []
    for model in models:
        traces.extend(traces_for(model, dataset, trace_count, crop, seed=seed))
    return Fig3Result(stats=trace_term_stats(traces), models=models)


def compute(profile: Profile | None = None) -> Fig3Result:
    """Profile-scaled entry point for the golden-regression harness."""
    p = resolve_profile(profile)
    return run(
        models=p.pick_models(CI_MODEL_NAMES),
        trace_count=p.trace_count,
        crop=p.crop,
        seed=p.seed,
    )


def format_result(result: Fig3Result) -> str:
    stats = result.stats
    rows = []
    for n in range(len(stats.hist_raw)):
        rows.append(
            (
                n,
                f"{stats.cdf_raw[n] * 100:.1f}%",
                f"{stats.cdf_delta[n] * 100:.1f}%",
            )
        )
    table = format_table(
        ["<= terms", "raw activations", "deltas"],
        rows,
        title="Fig 3: cumulative distribution of effectual terms",
    )
    summary = (
        f"\nsparsity: raw={stats.sparsity_raw * 100:.1f}% (paper 43%), "
        f"delta={stats.sparsity_delta * 100:.1f}% (paper 48%)\n"
        f"mean terms: raw={stats.mean_terms_raw:.2f}, "
        f"delta={stats.mean_terms_delta:.2f}"
    )
    return table + summary


def main() -> None:  # pragma: no cover - CLI entry
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
