"""PRA: the Bit-Pragmatic value-aware accelerator (Section III-B).

PRA processes activations term-serially: offset generators recode each
activation into its effectual signed powers of two (modified Booth), and
each serial inner-product unit consumes one term per lane per cycle.
Execution time is proportional to the effectual term content of the raw
imap, eroded by cross-lane synchronization (the slowest lane in a sync
group sets the pace) — both of which this model reproduces from the
bit-exact term counts of the trace.
"""

from __future__ import annotations

import numpy as np

from repro.arch.config import AcceleratorConfig, PRA_CONFIG
from repro.arch.cycles import LayerCycles, serial_layer_cycles
from repro.arch.term_maps import lower_layer, raw_term_map
from repro.nn.trace import ConvLayerTrace


class PRAModel:
    """Cycle model of the Bit-Pragmatic accelerator."""

    name = "PRA"

    def __init__(self, config: AcceleratorConfig = PRA_CONFIG):
        self.config = config

    def term_map(self, layer: ConvLayerTrace) -> np.ndarray:
        """Per-activation effectual-term counts of the padded raw imap.

        Memoized per layer and shared with Diffy's head-window accounting
        (see :mod:`repro.arch.term_maps`).
        """
        return raw_term_map(layer)

    def layer_cycles(self, layer: ConvLayerTrace) -> LayerCycles:
        lowered = lower_layer(layer)
        return serial_layer_cycles(layer, lowered.raw_terms, self.config)
