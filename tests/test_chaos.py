"""Tests for the chaos layer (repro.serve.chaos.*, ext_chaos)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.regression.serialize import canonical_dumps, to_jsonable
from repro.serve.chaos import (
    ChaosSpec,
    LadderPricing,
    NodeChaos,
    StorageChaos,
    generate_schedule,
    overload_requests,
    price_ladder,
    serve_ladder,
)
from repro.serve.chaos.campaign import (
    ChaosPoint,
    chaos_grid,
    point_fault_seed,
    run_chaos_grid,
)
from repro.serve.chaos.schedule import BurstWindow
from repro.serve.chaos.telemetry import ChaosTelemetry
from repro.serve.fleet import FleetConfig, ShardStream, simulate_fleet, simulate_shard
from repro.serve.latency import ServiceTimes
from repro.serve.service import ServeConfig
from repro.serve.workload import WorkloadSpec, apply_scene_dynamics, generate_requests


def _times(cold=0.05, warm=0.01, overhead=0.004, state_bytes=1000, engine="Diffy"):
    return ServiceTimes(
        engine=engine,
        cold_s=cold,
        warm_s=warm,
        batch_overhead_s=overhead,
        state_bytes=state_bytes,
        frequency_ghz=1.0,
    )


def _node(**kw):
    base = dict(
        workers=2,
        max_batch=4,
        max_wait_s=0.0,
        queue_capacity=16,
        deadline_s=0.3,
        state_capacity_bytes=64000,
    )
    base.update(kw)
    return ServeConfig(**base)


def _spec(**kw):
    base = dict(
        duration_s=10.0,
        session_rate=8.0,
        frames_per_session=5,
        frame_interval_s=0.1,
        seed=7,
    )
    base.update(kw)
    return WorkloadSpec(**base)


def _pricing(p_clean=0.0, p_corrected=0.0, p_detected=0.0, p_silent=0.0, rate=1e-2):
    return LadderPricing(
        ladder="none",
        fault_model="flip1",
        rate=rate,
        trials=4,
        p_clean=p_clean,
        p_corrected=p_corrected,
        p_detected=p_detected,
        p_silent=p_silent,
        storage_overhead=1.0,
    )


class TestChaosSpecAndSchedule:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="storage_rate"):
            ChaosSpec(storage_rate=-1e-3)
        with pytest.raises(ValueError, match="crash_downtime_s"):
            ChaosSpec(crashes=1)
        with pytest.raises(ValueError, match="degrade_slowdown"):
            ChaosSpec(degrades=1, degrade_len_s=1.0, degrade_slowdown=0.5)
        with pytest.raises(ValueError, match="burst_load_mult"):
            ChaosSpec(bursts=1, burst_len_s=1.0, burst_load_mult=0.5)

    def test_schedule_is_pure_function_of_spec(self):
        spec = ChaosSpec(
            crashes=2,
            crash_downtime_s=1.0,
            degrades=1,
            degrade_len_s=2.0,
            bursts=1,
            burst_len_s=2.0,
            seed=13,
        )
        a = generate_schedule(spec, 20.0, range(4))
        b = generate_schedule(spec, 20.0, range(4))
        assert a == b
        c = generate_schedule(dataclasses.replace(spec, seed=14), 20.0, range(4))
        assert c != a

    def test_events_land_inside_the_observable_window(self):
        spec = ChaosSpec(
            crashes=3,
            crash_downtime_s=0.5,
            degrades=3,
            degrade_len_s=1.0,
            bursts=3,
            burst_len_s=1.0,
            seed=3,
        )
        schedule = generate_schedule(spec, 100.0, range(4))
        starts = (
            [c.crash_s for c in schedule.crashes]
            + [d.start_s for d in schedule.degrades]
            + [b.start_s for b in schedule.bursts]
        )
        assert all(10.0 <= t <= 70.0 for t in starts)

    def test_per_node_crash_windows_never_overlap(self):
        spec = ChaosSpec(crashes=8, crash_downtime_s=5.0, seed=1)
        schedule = generate_schedule(spec, 40.0, range(2))
        for node in range(2):
            windows = sorted(schedule.crash_windows(node))
            for (_, end), (start, _) in zip(windows, windows[1:]):
                assert start >= end

    def test_node_events_need_nodes(self):
        spec = ChaosSpec(crashes=1, crash_downtime_s=1.0)
        with pytest.raises(ValueError, match="node id"):
            generate_schedule(spec, 10.0, [])

    def test_overload_requests_fill_burst_windows_only(self):
        spec = _spec(session_rate=20.0)
        chaos = ChaosSpec(bursts=2, burst_len_s=1.5, burst_load_mult=2.0, seed=5)
        schedule = generate_schedule(chaos, spec.duration_s, range(2))
        extra = overload_requests(spec, schedule, first_session_id=10**6)
        assert extra
        assert extra == overload_requests(spec, schedule, first_session_id=10**6)
        assert all(r.session_id >= 10**6 for r in extra)
        for r in extra:
            head = r.arrival_s - r.frame_index * spec.frame_interval_s
            assert any(w.start_s <= head < w.end_s for w in schedule.bursts)

    def test_overload_empty_without_extra_load(self):
        spec = _spec()
        chaos = ChaosSpec(bursts=1, burst_len_s=2.0, burst_load_mult=1.0, seed=5)
        schedule = generate_schedule(chaos, spec.duration_s, range(2))
        assert overload_requests(spec, schedule, first_session_id=10**6) == []


class TestLadderPricing:
    def test_unknown_ladder_raises(self):
        with pytest.raises(KeyError, match="unknown serve ladder"):
            serve_ladder("raid6")

    def test_zero_rate_is_all_clean_but_overhead_still_charged(self):
        for ladder in ("none", "full"):
            p = price_ladder(ladder, "flip1", 0.0, trials=8, seed=21, crop=16)
            assert p.p_clean == 1.0
            assert p.p_silent == 0.0
        none = price_ladder("none", "flip1", 0.0, trials=8, seed=21, crop=16)
        full = price_ladder("full", "flip1", 0.0, trials=8, seed=21, crop=16)
        assert none.storage_overhead == 1.0
        assert full.storage_overhead > 1.0

    def test_full_ladder_never_silent(self):
        p = price_ladder("full", "flip1", 1e-2, trials=16, seed=21, crop=16)
        assert p.p_silent == 0.0
        assert p.p_clean < 1.0

    def test_none_ladder_cannot_detect(self):
        p = price_ladder("none", "flip1", 1e-2, trials=16, seed=21, crop=16)
        assert p.p_detected == 0.0
        assert p.p_corrected == 0.0
        assert p.p_silent > 0.0

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            _pricing(p_clean=0.5, p_silent=0.1)


class TestStorageChaos:
    def test_outcome_is_content_keyed_and_order_free(self):
        chaos = StorageChaos(seed=9, base=_pricing(p_clean=0.5, p_silent=0.5))
        draws = {(s, f): chaos.outcome(s, f, now=1.0) for s in range(40) for f in range(5)}
        for (s, f), outcome in sorted(draws.items(), reverse=True):
            assert chaos.outcome(s, f, now=7.5) == outcome
        assert len(set(draws.values())) == 2  # both outcomes actually occur

    def test_zero_rate_is_always_clean(self):
        chaos = StorageChaos(seed=9, base=_pricing(p_clean=1.0, rate=0.0))
        assert chaos.outcome(1, 2, now=0.5) == "clean"

    def test_burst_window_switches_pricing(self):
        chaos = StorageChaos(
            seed=9,
            base=_pricing(p_clean=1.0),
            burst=_pricing(p_detected=1.0),
            bursts=(BurstWindow(2.0, 4.0, 10.0, 1.0),),
        )
        assert chaos.outcome(1, 2, now=1.0) == "clean"
        assert chaos.outcome(1, 2, now=3.0) == "detected"
        assert chaos.outcome(1, 2, now=4.0) == "clean"


class TestChaosTelemetry:
    def test_merge_is_exact(self):
        a = ChaosTelemetry(duration_s=10.0)
        b = ChaosTelemetry(duration_s=10.0)
        a.on_storage("detected")
        a.on_serve(1.0, warm=True, reanchor=False)
        a.on_crash(shed=2, killed=1, lost=3)
        b.on_storage("silent")
        b.on_serve(9.0, warm=False, reanchor=True)
        b.on_recovery(0.25)
        a.merge(b)
        snap = a.snapshot()
        assert snap["warm_attempts"] == 2
        assert snap["storage_detected"] == 1
        assert snap["storage_silent"] == 1
        assert snap["sessions_lost"] == 3
        assert snap["sessions_recovered"] == 1
        assert sum(snap["warm_by_bucket"]) == 1
        assert sum(snap["reanchor_by_bucket"]) == 1

    def test_merge_rejects_mismatched_windows(self):
        with pytest.raises(ValueError, match="different windows"):
            ChaosTelemetry(duration_s=10.0).merge(ChaosTelemetry(duration_s=5.0))

    def test_empty_recovery_serializes_to_zero_not_nan(self):
        snap = ChaosTelemetry(duration_s=10.0).snapshot()
        assert snap["recovery_ms"] == {"count": 0, "p50": 0.0, "p99": 0.0}


class TestShardChaos:
    def _stream(self, spec=None):
        return ShardStream.from_requests(0, generate_requests(spec or _spec()))

    def test_eventless_chaos_matches_no_chaos(self):
        stream, times, cfg = self._stream(), _times(), _node()
        plain = simulate_shard(stream, times, cfg)
        chaotic = simulate_shard(
            stream, times, cfg, chaos=NodeChaos(node_id=0, duration_s=10.0)
        )
        for name in ("arrived", "completed", "good", "shed_queue_full", "shed_deadline"):
            assert getattr(chaotic.telemetry, name) == getattr(plain.telemetry, name)
        assert chaotic.telemetry.busy_s == plain.telemetry.busy_s
        assert chaotic.state == plain.state
        assert plain.chaos is None
        snap = chaotic.chaos.snapshot()
        assert snap["crashes"] == 0
        assert snap["warm_attempts"] == 0
        assert sum(snap["warm_by_bucket"]) == chaotic.state.warm

    def test_crash_sheds_and_wipes_state(self):
        stream, times = self._stream(_spec(session_rate=20.0)), _times()
        cfg = _node(workers=1)
        chaos = NodeChaos(node_id=0, duration_s=10.0, down=((3.0, 5.0),))
        res = simulate_shard(stream, times, cfg, chaos=chaos)
        snap = res.chaos.snapshot()
        assert snap["crashes"] == 1
        assert snap["sessions_lost"] > 0
        assert snap["crash_shed"] + snap["killed_in_flight"] > 0
        assert res.state.reanchors_lost > 0
        # Every admitted request is accounted for exactly once.
        t = res.telemetry
        admitted = t.arrived - t.shed_queue_full
        assert (
            t.completed + t.shed_deadline + snap["crash_shed"] + snap["killed_in_flight"]
            == admitted
        )

    def test_degrade_window_slows_service(self):
        stream, times, cfg = self._stream(), _times(), _node()
        slow = NodeChaos(node_id=0, duration_s=10.0, degrade=((0.0, 10.0, 3.0),))
        plain = simulate_shard(stream, times, cfg)
        degraded = simulate_shard(stream, times, cfg, chaos=slow)
        assert degraded.telemetry.busy_s > plain.telemetry.busy_s
        assert degraded.telemetry.good <= plain.telemetry.good

    def test_detected_storage_faults_force_reanchors(self):
        stream, times, cfg = self._stream(), _times(), _node()
        storage = StorageChaos(seed=3, base=_pricing(p_detected=1.0))
        res = simulate_shard(
            stream, times, cfg, chaos=NodeChaos(0, 10.0, storage=storage)
        )
        snap = res.chaos.snapshot()
        assert snap["warm_attempts"] > 0
        assert snap["storage_detected"] == snap["warm_attempts"]
        assert snap["storage_silent"] == 0
        assert res.state.warm == 0  # every warm-eligible read was invalidated

    def test_silent_storage_faults_serve_warm_unknowingly(self):
        stream, times, cfg = self._stream(), _times(), _node()
        storage = StorageChaos(seed=3, base=_pricing(p_silent=1.0))
        res = simulate_shard(
            stream, times, cfg, chaos=NodeChaos(0, 10.0, storage=storage)
        )
        snap = res.chaos.snapshot()
        assert snap["storage_silent"] == snap["warm_attempts"] > 0
        assert res.state.warm > 0  # nothing flagged, so nothing re-anchored

    def test_storage_overhead_shrinks_residency(self):
        stream, times = self._stream(_spec(session_rate=20.0)), _times()
        cfg = _node(state_capacity_bytes=8000)
        fat = StorageChaos(
            seed=3, base=dataclasses.replace(_pricing(p_clean=1.0), storage_overhead=4.0)
        )
        plain = simulate_shard(stream, times, cfg)
        protected = simulate_shard(
            stream, times, cfg, chaos=NodeChaos(0, 10.0, storage=fat)
        )
        assert protected.state.evictions > plain.state.evictions
        assert protected.state.warm < plain.state.warm


class TestSceneDynamics:
    def test_zero_probability_is_identity(self):
        reqs = generate_requests(_spec())
        assert apply_scene_dynamics(reqs, seed=7) == list(reqs)

    def test_cuts_are_deterministic_and_never_on_session_heads(self):
        reqs = generate_requests(_spec())
        a = apply_scene_dynamics(reqs, cut_probability=0.3, burst_probability=0.2, seed=7)
        b = apply_scene_dynamics(reqs, cut_probability=0.3, burst_probability=0.2, seed=7)
        assert a == b
        assert any(r.scene_cut for r in a)
        assert all(not r.scene_cut for r in a if r.frame_index == 0)
        assert any(r.motion > 1.0 for r in a)

    def test_reanchors_spike_at_scene_cuts(self):
        # The satellite regression: with no shed/eviction pressure, every
        # cut frame re-anchors (cold) where it would have served warm.
        reqs = generate_requests(_spec())
        cut = apply_scene_dynamics(reqs, cut_probability=0.25, seed=7)
        cfg = _node(workers=8, queue_capacity=512, deadline_s=100.0, state_capacity_bytes=10**9)
        plain = simulate_shard(ShardStream.from_requests(0, reqs), _times(), cfg)
        cuts = simulate_shard(ShardStream.from_requests(0, cut), _times(), cfg)
        n_cuts = sum(r.scene_cut for r in cut)
        assert n_cuts > 0
        assert plain.state.reanchors_cut == 0
        assert cuts.state.reanchors_cut == n_cuts
        assert cuts.state.warm == plain.state.warm - n_cuts

    def test_motion_prices_into_warm_service_time(self):
        times = _times(cold=0.05, warm=0.01)
        assert times.request_s("temporal", 1.0) == times.warm_s
        assert times.request_s("temporal", 2.0) == pytest.approx(0.02)
        # Extreme motion can never cost more than a cold frame.
        assert times.request_s("temporal", 100.0) == times.cold_s


class TestFleetChaos:
    def _chaos_spec(self, **kw):
        base = dict(
            storage_rate=1e-2,
            protection="none",
            storage_trials=8,
            crashes=1,
            crash_downtime_s=2.0,
            seed=5,
        )
        base.update(kw)
        return ChaosSpec(**base)

    def test_chaos_run_byte_identical_across_worker_counts(self):
        reqs = generate_requests(_spec(session_rate=15.0))
        cfg = FleetConfig(
            nodes=3, routing="state_aware", node=_node(), chaos=self._chaos_spec(), seed=5
        )
        serial = simulate_fleet(reqs, _times(), cfg, 10.0, max_workers=0)
        pooled = simulate_fleet(reqs, _times(), cfg, 10.0, max_workers=2)
        assert canonical_dumps(to_jsonable(serial)) == canonical_dumps(to_jsonable(pooled))
        assert serial.chaos is not None

    def test_event_free_chaos_spec_leaves_serving_untouched(self):
        reqs = generate_requests(_spec())
        node = _node()
        plain = simulate_fleet(
            reqs, _times(), FleetConfig(nodes=2, node=node, seed=5), 10.0
        )
        nulled = simulate_fleet(
            reqs,
            _times(),
            FleetConfig(nodes=2, node=node, chaos=ChaosSpec(seed=5), seed=5),
            10.0,
        )
        assert plain.chaos is None
        assert nulled.chaos is not None
        assert nulled.metrics == plain.metrics
        assert nulled.warm_served == plain.warm_served
        assert nulled.cold_served == plain.cold_served

    def test_crash_is_visible_in_fleet_report(self):
        reqs = generate_requests(_spec(session_rate=15.0))
        cfg = FleetConfig(
            nodes=3,
            routing="state_aware",
            node=_node(),
            chaos=self._chaos_spec(storage_rate=0.0),
            seed=5,
        )
        rep = simulate_fleet(reqs, _times(), cfg, 10.0)
        assert rep.chaos["crashes"] == 1
        assert rep.chaos["sessions_lost"] > 0

    def test_full_ladder_serves_no_silent_corruption(self):
        reqs = generate_requests(_spec(session_rate=15.0))

        def fleet(protection):
            cfg = FleetConfig(
                nodes=2,
                routing="state_aware",
                node=_node(),
                chaos=self._chaos_spec(crashes=0, protection=protection),
                seed=5,
            )
            return simulate_fleet(reqs, _times(), cfg, 10.0)

        unprotected = fleet("none")
        protected = fleet("full")
        assert unprotected.chaos["storage_silent"] > 0
        assert unprotected.chaos["storage_detected"] == 0
        assert protected.chaos["storage_silent"] == 0
        assert protected.chaos["storage_detected"] > 0
        assert protected.reanchors_lost > 0  # detections became re-anchors

    def test_unknown_ladder_fails_fast(self):
        with pytest.raises(KeyError, match="unknown serve ladder"):
            FleetConfig(nodes=2, chaos=ChaosSpec(protection="raid6"))


class TestChaosCampaign:
    POINTS = (("none", 0.0), ("none", 1e-2), ("full", 0.0), ("full", 1e-2))

    def _grid(self, tmp_path=None, checkpoint=None, resume=False, points=None, **kw):
        reqs = generate_requests(_spec(session_rate=12.0))
        times = {"Diffy": _times()}
        pts = points or chaos_grid(("Diffy",), ("none", "full"), (0.0, 1e-2))
        template = ChaosSpec(crashes=1, crash_downtime_s=1.5, storage_trials=8, seed=11)
        base = dict(nodes=2, seed=11, checkpoint=checkpoint, resume=resume)
        base.update(kw)
        return run_chaos_grid(reqs, times, pts, template, _node(), 10.0, **base)

    def test_grid_fails_fast_on_unknown_ladder(self):
        with pytest.raises(KeyError, match="unknown serve ladder"):
            chaos_grid(("Diffy",), ("raid6",), (0.0,))

    def test_point_fault_seeds_are_distinct_per_coordinate(self):
        points = chaos_grid(("VAA", "Diffy"), ("none", "full"), (0.0, 1e-3))
        seeds = [point_fault_seed(11, p) for p in points]
        assert len(set(seeds)) == len(points)
        assert point_fault_seed(11, points[0]) != point_fault_seed(12, points[0])

    def test_checkpointed_run_matches_fresh_run(self, tmp_path):
        fresh = self._grid()
        ckpt = self._grid(checkpoint=tmp_path / "grid.jsonl")
        assert canonical_dumps(to_jsonable(fresh)) == canonical_dumps(to_jsonable(ckpt))

    def test_resume_after_interruption_is_byte_identical(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        fresh = self._grid(checkpoint=path)
        # Simulate a crash after the first completed cell: keep the meta
        # header and one row, drop the rest.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        resumed = self._grid(checkpoint=path, resume=True)
        assert canonical_dumps(to_jsonable(fresh)) == canonical_dumps(to_jsonable(resumed))

    def test_resume_tolerates_a_torn_final_line(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        fresh = self._grid(checkpoint=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])
        resumed = self._grid(checkpoint=path, resume=True)
        assert canonical_dumps(to_jsonable(fresh)) == canonical_dumps(to_jsonable(resumed))

    def test_resume_refuses_a_drifted_fault_seed(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        self._grid(checkpoint=path)
        lines = path.read_text().splitlines()
        row = json.loads(lines[1])
        row["cell"]["fault_seed"] += 1
        lines[1] = json.dumps(row)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="drifted fault schedule"):
            self._grid(checkpoint=path, resume=True)

    def test_resume_refuses_a_different_grid_configuration(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        self._grid(checkpoint=path)
        with pytest.raises(ValueError, match="different chaos grid"):
            self._grid(checkpoint=path, resume=True, nodes=3)

    def test_cells_preserve_grid_order_and_fault_seed(self, tmp_path):
        result = self._grid()
        assert [(c.ladder, c.rate) for c in result.cells] == list(self.POINTS)
        for cell in result.cells:
            point = ChaosPoint(cell.engine, cell.ladder, cell.rate)
            assert cell.fault_seed == point_fault_seed(11, point)


class TestExtChaosStudy:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.experiments import ext_chaos

        return ext_chaos.run(
            crop=32,
            ladders=("none", "full"),
            rates=(0.0, 1e-3),
            nodes=2,
            duration_units=20.0,
        )

    def test_grid_complete(self, study):
        assert len(study.cells) == 2 * 2 * 2
        assert study.cell("Diffy", "full", 1e-3).ladder == "full"
        with pytest.raises(KeyError):
            study.cell("Diffy", "full", 0.5)

    def test_golden_properties_populated(self, study):
        assert study.silent_under_full == 0
        assert set(study.goodput_by_ladder) == {"none", "full"}
        assert set(study.warm_monotone_by_ladder) == {"none", "full"}
        recovery = study.crash_recovery
        assert set(recovery) >= {"spiked", "recovered", "reanchors_in_storm"}

    def test_format_result(self, study):
        from repro.experiments import ext_chaos

        text = ext_chaos.format_result(study)
        assert "chaos under load" in text
        assert "silent corruptions by ladder" in text
        assert "crash recovery" in text

    def test_serializable(self, study):
        dump = canonical_dumps(to_jsonable(study))
        assert "silent_under_full" in dump

    def test_requires_vaa(self):
        from repro.experiments import ext_chaos

        with pytest.raises(ValueError, match="VAA"):
            ext_chaos.run(engines=("Diffy",))
