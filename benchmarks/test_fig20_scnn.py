"""Benchmark: regenerate Fig 20 (Diffy vs SCNN at weight sparsities)."""

from benchmarks.common import FAST_CI_MODELS, TRACE_COUNT
from repro.experiments import fig20_scnn


def test_fig20_scnn(benchmark):
    result = benchmark.pedantic(
        lambda: fig20_scnn.run(models=FAST_CI_MODELS, trace_count=TRACE_COUNT),
        rounds=1,
        iterations=1,
    )
    means = [result.mean_speedup(s) for s in result.sparsities]
    # Paper: Diffy wins at every sparsity level (5.4x .. 1.04x), with the
    # advantage shrinking monotonically as SCNN's models get sparser.
    assert all(m >= 0.9 for m in means)
    assert means[0] > means[-1]
    assert means == sorted(means, reverse=True)
    assert means[0] > 2.5
