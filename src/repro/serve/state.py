"""Per-session temporal-delta state under a memory cap.

A warm session serves its next frame in *temporal* mode: the previous
frame's activations are resident, so a differential engine streams
temporal deltas (:func:`repro.core.temporal.temporal_deltas`) instead of
re-deriving everything spatially.  That residency is CBInfer's storage
cost — one full set of feature maps per session — so a real service must
bound it: this store keeps at most ``capacity_bytes`` of frame buffers
and evicts least-recently-served sessions when a new one needs room.

The store only answers *mode* questions; the actual activation arrays
live in the trace-driven latency model.  What matters for scheduling is
exactly what this tracks: which sessions are warm, and what residency
costs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class StateStats:
    """Lifetime counters of one store."""

    warm: int = 0  # frames served in temporal mode
    cold: int = 0  # frames served in spatial/raw mode
    insertions: int = 0
    evictions: int = 0
    #: Cold serves that re-anchor a session which *had* state here: the
    #: previous frame is resident but non-contiguous (shed frame gap)...
    reanchors_gap: int = 0
    #: ...or the session's state was evicted under the byte cap and the
    #: session is being re-admitted.  Both pay a cold frame that a larger
    #: store would not have charged — the honest migration/eviction cost.
    reanchors_evicted: int = 0
    #: Cold serves forced because the session's resident state was
    #: invalidated (detected storage corruption, node crash) — the
    #: protection ladder's re-anchor cost, paid instead of serving wrong.
    reanchors_lost: int = 0
    #: Cold serves forced by a scene cut: the temporal delta is useless
    #: across a cut, so the service re-anchors even with state resident.
    reanchors_cut: int = 0
    #: Cold serves forced by a calibration-table swap: resident state was
    #: written under an older precision table, so the session re-anchors
    #: under the new one — recalibration downtime, priced honestly.
    reanchors_recal: int = 0

    @property
    def reanchors(self) -> int:
        return (
            self.reanchors_gap
            + self.reanchors_evicted
            + self.reanchors_lost
            + self.reanchors_cut
            + self.reanchors_recal
        )

    @property
    def warm_fraction(self) -> float:
        total = self.warm + self.cold
        return self.warm / total if total else 0.0


class TemporalStateStore:
    """LRU store of per-session previous-frame state.

    ``bytes_per_session`` is the frame-buffer footprint of one session
    (:meth:`repro.core.temporal.FrameSequenceTrace.frame_buffer_bytes`,
    scaled to the served resolution).  ``capacity_bytes=0`` disables
    temporal state entirely — every frame is served cold, which is the
    CBInfer-less baseline the scheduling experiments compare against.
    """

    def __init__(self, capacity_bytes: int, bytes_per_session: int):
        if capacity_bytes < 0:
            raise ValueError(f"capacity_bytes must be >= 0, got {capacity_bytes}")
        if bytes_per_session <= 0:
            raise ValueError(f"bytes_per_session must be > 0, got {bytes_per_session}")
        self.capacity_bytes = int(capacity_bytes)
        self.bytes_per_session = int(bytes_per_session)
        #: session_id -> last frame index whose state is resident (LRU order).
        self._resident: "OrderedDict[int, int]" = OrderedDict()
        #: Sessions whose state was evicted under the cap (cleared when the
        #: session is re-admitted or explicitly dropped); distinguishes an
        #: eviction re-anchor from a brand-new session's first cold frame.
        self._displaced: "set[int]" = set()
        #: Sessions whose state was invalidated (detected corruption or a
        #: node crash); their next serve is a ``reanchors_lost`` cold frame.
        self._invalidated: "set[int]" = set()
        #: Current calibration-table version; state written under an older
        #: version is stale (see :meth:`set_version`).  0 when no
        #: calibration loop is attached — the legacy path never bumps it,
        #: so calibration-free runs are bit-identical to before.
        self._version = 0
        #: session_id -> version its resident state was written under.
        self._session_version: "dict[int, int]" = {}
        self.stats = StateStats()

    @property
    def resident_sessions(self) -> int:
        return len(self._resident)

    @property
    def resident_bytes(self) -> int:
        return len(self._resident) * self.bytes_per_session

    @property
    def max_sessions(self) -> int:
        return self.capacity_bytes // self.bytes_per_session

    def set_version(self, version: int) -> None:
        """Install a new calibration-table version (atomic swap point).

        State buffers hold activations *encoded under a precision table*;
        after a swap the resident encodings no longer match what the new
        table would produce, so every resident session's next serve
        re-anchors cold (``reanchors_recal``) and re-admits itself under
        the new version.  O(1): staleness is checked lazily at serve
        time, nothing is scanned or copied here.
        """
        self._version = int(version)

    def _fresh(self, session_id: int) -> bool:
        return self._session_version.get(session_id, self._version) == self._version

    def is_warm(self, session_id: int, frame_index: int) -> bool:
        """Would serving this frame run in temporal mode right now?"""
        last = self._resident.get(session_id)
        return last is not None and last == frame_index - 1 and self._fresh(session_id)

    def serve(self, session_id: int, frame_index: int, scene_cut: bool = False) -> str:
        """Record one frame being served; returns ``"temporal"`` or ``"spatial"``.

        Temporal mode requires the *immediately preceding* frame's state:
        a gap (shed frame, evicted session) falls back to spatial and the
        served frame re-anchors the session — the next contiguous frame
        is warm again.  ``scene_cut`` forces a spatial re-anchor even with
        contiguous state resident: across a cut the temporal delta is as
        dense as the frame itself, so the warm path buys nothing.
        """
        last = self._resident.get(session_id)
        contiguous = last is not None and last == frame_index - 1
        fresh = self._fresh(session_id)
        warm = contiguous and fresh and not scene_cut
        if warm:
            self.stats.warm += 1
        else:
            self.stats.cold += 1
            if scene_cut and contiguous and fresh:
                self.stats.reanchors_cut += 1
            elif session_id in self._resident and not fresh:
                # Resident state predates the current calibration table:
                # the swap's deferred cost lands here.
                self.stats.reanchors_recal += 1
            elif session_id in self._resident:
                self.stats.reanchors_gap += 1
            elif session_id in self._invalidated:
                # Re-admission after corruption/crash invalidation: the
                # cold frame is the protection ladder's recovery cost.
                self.stats.reanchors_lost += 1
                self._invalidated.discard(session_id)
            elif session_id in self._displaced:
                # Re-admission after a byte-cap eviction: this cold frame
                # is the eviction's deferred cost, not a fresh session.
                self.stats.reanchors_evicted += 1
                self._displaced.discard(session_id)
        self._touch(session_id, frame_index)
        return "temporal" if warm else "spatial"

    def _touch(self, session_id: int, frame_index: int) -> None:
        if session_id in self._resident:
            self._resident[session_id] = frame_index
            self._resident.move_to_end(session_id)
            self._session_version[session_id] = self._version
            return
        if self.bytes_per_session > self.capacity_bytes:
            return  # a single session cannot fit; stay cold forever
        while self.resident_bytes + self.bytes_per_session > self.capacity_bytes:
            evicted_id, _ = self._resident.popitem(last=False)
            self._session_version.pop(evicted_id, None)
            self._displaced.add(evicted_id)
            self.stats.evictions += 1
        self._resident[session_id] = frame_index
        self._session_version[session_id] = self._version
        self.stats.insertions += 1

    def invalidate(self, session_id: int) -> bool:
        """Discard one session's state as *untrustworthy* (detected fault).

        Unlike an eviction this is not a capacity decision: the ladder
        flagged the stored state, so serving from it would be wrong.  The
        session's next frame re-anchors cold as ``reanchors_lost``.
        """
        if self._resident.pop(session_id, None) is None:
            return False
        self._session_version.pop(session_id, None)
        self._displaced.discard(session_id)
        self._invalidated.add(session_id)
        return True

    def invalidate_all(self) -> "tuple[int, ...]":
        """Invalidate every resident session (node crash lost the store).

        Returns the invalidated session ids in LRU order so the caller
        can track per-session recovery times.
        """
        lost = tuple(self._resident)
        for session_id in lost:
            self._displaced.discard(session_id)
            self._invalidated.add(session_id)
        self._resident.clear()
        self._session_version.clear()
        return lost

    def drop(self, session_id: int) -> bool:
        """Explicitly release one session's state (session end)."""
        self._displaced.discard(session_id)
        self._invalidated.discard(session_id)
        self._session_version.pop(session_id, None)
        return self._resident.pop(session_id, None) is not None
