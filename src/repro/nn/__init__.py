"""Fixed-point CNN inference substrate.

The Diffy accelerator operates on 16-bit fixed-point activation streams.
This subpackage provides everything needed to *generate* those streams
without an external deep-learning framework:

- :mod:`repro.nn.fixed_point` — the :class:`FixedPointTensor` value type,
- :mod:`repro.nn.functional`  — exact integer convolution and resampling,
- :mod:`repro.nn.layers`      — layer objects (Conv2d, pooling, reshuffles),
- :mod:`repro.nn.network`     — sequential networks with float calibration
  followed by bit-exact integer inference,
- :mod:`repro.nn.trace`       — per-layer activation traces consumed by the
  accelerator models in :mod:`repro.arch`.

Inference runs in two phases, mirroring how a deployment toolchain targets
an accelerator such as Diffy: a float *calibration* pass picks per-layer
output scales, then the *integer* pass performs exact 16-bit fixed point
arithmetic so that every downstream measurement (Booth term counts, dynamic
precisions, delta statistics) is a bit-exact property of the value stream.
"""

from repro.nn.fixed_point import FixedPointTensor, INPUT_SCALE, ACT_BITS
from repro.nn.functional import (
    conv2d_int,
    conv2d_float,
    im2col,
    space_to_depth,
    depth_to_space,
    upsample_nearest,
    max_pool2d,
)
from repro.nn.layers import (
    Layer,
    Conv2d,
    MaxPool2d,
    SpaceToDepth,
    DepthToSpace,
    UpsampleNearest,
    AppendConstantChannels,
    GlobalResidualAdd,
)
from repro.nn.network import Network
from repro.nn.trace import ActivationTrace, ConvLayerTrace

__all__ = [
    "FixedPointTensor",
    "INPUT_SCALE",
    "ACT_BITS",
    "conv2d_int",
    "conv2d_float",
    "im2col",
    "space_to_depth",
    "depth_to_space",
    "upsample_nearest",
    "max_pool2d",
    "Layer",
    "Conv2d",
    "MaxPool2d",
    "SpaceToDepth",
    "DepthToSpace",
    "UpsampleNearest",
    "AppendConstantChannels",
    "GlobalResidualAdd",
    "Network",
    "ActivationTrace",
    "ConvLayerTrace",
]
