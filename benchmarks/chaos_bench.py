"""Chaos-under-load smoke benchmark: corruption SLO and goodput bounds.

Runs the chaos grid (:mod:`repro.serve.chaos.campaign`) on one measured
workload — scene cuts and motion bursts overlaid, one node crash, one
degraded-node window, one correlated fault+load burst — and guards three
invariants, exiting non-zero if any fails:

1. **Zero silent corruptions under ``full``** — at every fault rate
   swept, the full protection ladder never serves corrupt temporal state
   without flagging it (the silent-corruption SLO).
2. **Bounded chaos tax** — the fault-free ``full``-ladder cell keeps at
   least ``1 - MAX_CHAOS_LOSS`` of the goodput the same fleet achieves
   on the same workload with no chaos at all: crash + degrade + burst +
   protection overhead must degrade, not collapse, the service.
3. **Bounded fault tax** — within the ``full`` ladder, goodput at every
   swept fault rate stays within ``MAX_FAULT_LOSS`` of its fault-free
   cell: detected faults re-anchor (pay cold), they do not take the
   fleet down.

Results land in ``BENCH_chaos.json``.  The model/crop/seed default to
the same values as ``serve_bench.py``/``fleet_bench.py`` so the three
benchmarks share one cached service-time measurement in CI.

Usage::

    python benchmarks/chaos_bench.py [--model IRCNN] [--crop 48] [--full] [--json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.chaos.campaign import chaos_grid, run_chaos_grid  # noqa: E402
from repro.serve.chaos.schedule import ChaosSpec, generate_schedule, overload_requests  # noqa: E402
from repro.serve.fleet import FleetConfig, simulate_fleet  # noqa: E402
from repro.serve.latency import measure_service_times  # noqa: E402
from repro.serve.service import ServeConfig  # noqa: E402
from repro.serve.workload import WorkloadSpec, apply_scene_dynamics, generate_requests  # noqa: E402
from repro.utils.rng import DEFAULT_SEED  # noqa: E402

ENGINE = "Diffy"
WORKERS = 2
FRAMES_PER_SESSION = 8
LOAD_FACTOR = 1.15  # x the fleet's cold capacity on the fastest engine

#: Gate thresholds (lower bounds on retained goodput).  Measured locally
#: the chaos cell actually *exceeds* the no-chaos baseline — a crash
#: sheds queued requests that would have missed their deadline anyway,
#: which is goodput-positive under a binding deadline — and the worst
#: full-ladder fault tax is ~1%.  The bounds are set loose enough to
#: absorb scheduling discreteness at other crops/seeds while still
#: catching a protection ladder that melts under load.
MAX_CHAOS_LOSS = 0.25
MAX_FAULT_LOSS = 0.15


def sweep(model: str, crop: int, seed: int, full: bool) -> dict:
    ladders = ("none", "ecc", "checksum", "keyframe", "full") if full else ("none", "full")
    rates = (0.0, 1e-3, 3e-3, 1e-2) if full else (0.0, 1e-3)
    nodes = 4 if full else 2
    times = measure_service_times(model, engines=("VAA", ENGINE), crop=crop, seed=seed)
    unit = times["VAA"].cold_s
    provision_s = min(t.cold_s for t in times.values())
    spec = WorkloadSpec(
        duration_s=40.0 * unit,
        session_rate=LOAD_FACTOR * nodes * WORKERS / provision_s / FRAMES_PER_SESSION,
        frames_per_session=FRAMES_PER_SESSION,
        frame_interval_s=2.0 * unit,
        seed=seed,
    )
    requests = apply_scene_dynamics(
        generate_requests(spec), cut_probability=0.02, burst_probability=0.05, seed=seed
    )
    template = ChaosSpec(
        fault_model="flip1",
        crashes=1,
        crash_downtime_s=4.0 * unit,
        degrades=1,
        degrade_len_s=6.0 * unit,
        degrade_slowdown=2.0,
        bursts=1,
        burst_len_s=6.0 * unit,
        burst_fault_mult=10.0,
        burst_load_mult=1.5,
        seed=seed,
    )
    schedule = generate_schedule(template, spec.duration_s, range(nodes))
    extra = overload_requests(spec, schedule, first_session_id=10**6)
    merged = sorted(
        list(requests) + extra, key=lambda r: (r.arrival_s, r.session_id, r.frame_index)
    )
    node_config = ServeConfig(
        workers=WORKERS,
        max_batch=4,
        max_wait_s=0.0,
        queue_capacity=32,
        deadline_s=2.5 * unit,
        state_capacity_bytes=48 * times[ENGINE].state_bytes,
    )
    ttl = (2.0 * FRAMES_PER_SESSION + 8.0) * unit

    baseline = simulate_fleet(
        merged,
        times[ENGINE],
        FleetConfig(
            nodes=nodes,
            routing="state_aware",
            node=node_config,
            session_ttl_s=ttl,
            seed=seed,
        ),
        spec.duration_s,
    )
    grid = run_chaos_grid(
        merged,
        times,
        chaos_grid((ENGINE,), ladders, rates),
        template,
        node_config,
        spec.duration_s,
        nodes=nodes,
        session_ttl_s=ttl,
        seed=seed,
    )
    cells = [
        {
            "ladder": c.ladder,
            "rate": c.rate,
            "goodput_rps": c.goodput_rps,
            "warm_fraction": c.warm_fraction,
            "storage_detected": c.storage_detected,
            "storage_silent": c.storage_silent,
            "sessions_lost": c.sessions_lost,
        }
        for c in grid.cells
    ]
    return {
        "model": model,
        "crop": crop,
        "seed": seed,
        "nodes": nodes,
        "ladders": list(ladders),
        "rates": list(rates),
        "offered_rps": grid.offered_rps,
        "overload_requests": len(extra),
        "vaa_cold_s": unit,
        "baseline_goodput_rps": baseline.goodput_rps,
        "max_chaos_loss": MAX_CHAOS_LOSS,
        "max_fault_loss": MAX_FAULT_LOSS,
        "cells": cells,
    }


def check(result: dict) -> "list[str]":
    failures = []
    cells = result["cells"]
    full_cells = [c for c in cells if c["ladder"] == "full"]
    for c in full_cells:
        print(
            f"full ladder rate {c['rate']:g}: goodput {c['goodput_rps']:.2f} rps, "
            f"warm {100 * c['warm_fraction']:.0f}%, detected {c['storage_detected']}, "
            f"silent {c['storage_silent']}",
            file=sys.stderr,
        )
        if c["storage_silent"]:
            failures.append(
                f"full ladder served {c['storage_silent']} silent corruptions "
                f"at rate {c['rate']:g}"
            )
    base = result["baseline_goodput_rps"]
    fault_free = next(c for c in full_cells if c["rate"] == 0.0)
    floor = (1.0 - result["max_chaos_loss"]) * base
    print(
        f"chaos tax: {base:.2f} rps fault-free -> {fault_free['goodput_rps']:.2f} rps "
        f"under chaos (floor {floor:.2f})",
        file=sys.stderr,
    )
    if fault_free["goodput_rps"] < floor:
        failures.append(
            f"chaos costs too much goodput: {fault_free['goodput_rps']:.3f} rps under "
            f"chaos vs {base:.3f} rps fault-free (floor {floor:.3f})"
        )
    fault_floor = (1.0 - result["max_fault_loss"]) * fault_free["goodput_rps"]
    for c in full_cells:
        if c["goodput_rps"] < fault_floor:
            failures.append(
                f"full ladder goodput collapsed at rate {c['rate']:g}: "
                f"{c['goodput_rps']:.3f} rps vs floor {fault_floor:.3f}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", default="IRCNN")
    parser.add_argument("--crop", type=int, default=48)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--full", action="store_true", help="all five ladders, four rates, four nodes (nightly)"
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_chaos.json"),
        help="where to write the result JSON",
    )
    parser.add_argument("--json", action="store_true", help="print the result JSON to stdout")
    args = parser.parse_args(argv)

    result = sweep(args.model, args.crop, args.seed, args.full)
    Path(args.out).write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    failures = check(result)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    if failures:
        print("FAIL:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"ok: wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
