"""Parameter profiles that scale every experiment up or down together.

A :class:`Profile` bundles the knobs shared by all experiment modules —
trace count, crop size, seed, and an optional model subset — so the same
`compute()` entry point can run at CI scale (small crops, few traces,
committed goldens) or at paper scale (the module defaults used for the
reported numbers).  The regression harness keys goldens by
``profile.name``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.experiments.common import DEFAULT_TRACE_COUNT
from repro.utils.rng import DEFAULT_SEED


@dataclass(frozen=True)
class Profile:
    """One named scale at which every experiment can run.

    Attributes
    ----------
    name:
        Key used for golden storage (``goldens/<name>/<experiment>.json``).
    trace_count:
        Traces per model (experiments with their own default still obey
        the profile so results stay comparable across experiments).
    crop:
        Input crop edge in pixels; ``None`` keeps each model's default
        ``trace_crop`` (and each experiment's own crop default).
    seed:
        Root RNG seed for weights, inputs, and calibration.
    models:
        Optional model-name subset; ``None`` keeps each experiment's own
        model list (the paper's).  Mainly for tiny test profiles.
    """

    name: str
    trace_count: int = DEFAULT_TRACE_COUNT
    crop: int | None = None
    seed: int = DEFAULT_SEED
    models: tuple[str, ...] | None = None

    def pick_models(self, default: "tuple[str, ...]") -> "tuple[str, ...]":
        """The model list this profile runs: its subset, else ``default``."""
        return self.models if self.models is not None else default

    def pick_crop(self, default: int | None = None) -> int | None:
        """The crop this profile uses, else an experiment's own default."""
        return self.crop if self.crop is not None else default

    def describe(self) -> dict:
        """JSON-friendly description embedded in golden files."""
        return asdict(self)


#: Reduced scale for CI: small crops keep tracing cheap while preserving
#: the HD-statistics properties the paper's claims rest on (Fig 17 shows
#: they weaken but survive at lower resolution).
CI_PROFILE = Profile(name="ci", trace_count=DEFAULT_TRACE_COUNT, crop=48)

#: Paper scale: every experiment module's own defaults (model-default
#: crops, default trace counts) — what `run_all` reports.
FULL_PROFILE = Profile(name="full", trace_count=DEFAULT_TRACE_COUNT, crop=None)

#: Named profiles accepted by the regression CLI.
PROFILES: dict = {p.name: p for p in (CI_PROFILE, FULL_PROFILE)}


def resolve_profile(profile: Profile | str | None) -> Profile:
    """Normalize a profile argument: object, registered name, or None (CI)."""
    if profile is None:
        return CI_PROFILE
    if isinstance(profile, Profile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown profile {profile!r}; registered: {sorted(PROFILES)}"
        ) from None
