"""Fig 4: potential speedups of RawE and DeltaE over processing ALL terms.

Pure value-statistics potentials (perfect utilization, no sync); the cycle
models of Figs 11/13 then erode them — "benefits are proportional to but
lower than the potential".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.potential import PotentialSpeedups, potential_speedups
from repro.experiments.common import (
    CI_MODEL_NAMES,
    DEFAULT_DATASET,
    DEFAULT_TRACE_COUNT,
    format_table,
    geomean,
    traces_for,
)
from repro.experiments.profiles import Profile, resolve_profile
from repro.utils.rng import DEFAULT_SEED


@dataclass(frozen=True)
class Fig4Result:
    potentials: tuple[PotentialSpeedups, ...]

    @property
    def mean_raw(self) -> float:
        return geomean(p.raw_effectual for p in self.potentials)

    @property
    def mean_delta(self) -> float:
        return geomean(p.delta_effectual for p in self.potentials)


def run(
    models: tuple[str, ...] = CI_MODEL_NAMES,
    dataset: str = DEFAULT_DATASET,
    trace_count: int = DEFAULT_TRACE_COUNT,
    crop: int | None = None,
    seed: int = DEFAULT_SEED,
) -> Fig4Result:
    return Fig4Result(
        potentials=tuple(
            potential_speedups(traces_for(model, dataset, trace_count, crop, seed=seed))
            for model in models
        )
    )


def compute(profile: Profile | None = None) -> Fig4Result:
    """Profile-scaled entry point for the golden-regression harness."""
    p = resolve_profile(profile)
    return run(
        models=p.pick_models(CI_MODEL_NAMES),
        trace_count=p.trace_count,
        crop=p.crop,
        seed=p.seed,
    )


def format_result(result: Fig4Result) -> str:
    rows = [
        (
            p.network,
            f"{p.raw_effectual:.2f}x",
            f"{p.delta_effectual:.2f}x",
            f"{p.delta_over_raw:.2f}x",
        )
        for p in result.potentials
    ]
    rows.append(
        ("average", f"{result.mean_raw:.2f}x", f"{result.mean_delta:.2f}x",
         f"{result.mean_delta / result.mean_raw:.2f}x")
    )
    return format_table(
        ["network", "RawE / ALL", "DeltaE / ALL", "DeltaE / RawE"],
        rows,
        title="Fig 4: potential work-reduction speedups",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
