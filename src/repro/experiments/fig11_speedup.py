"""Fig 11: PRA and Diffy speedup over VAA under four compression regimes.

HD inputs, DDR4-3200 (Section IV-A).  The paper: PRA reaches ~5x with
DeltaD16 (5.1x ideal); Diffy 7.1x over VAA / 1.41x over PRA; only
JointNet keeps noticeable stalls (~8.2%) under DeltaD16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.sim import simulate_network
from repro.experiments.common import (
    CI_MODEL_NAMES,
    DEFAULT_DATASET,
    DEFAULT_TRACE_COUNT,
    format_table,
    geomean,
)
from repro.experiments.profiles import Profile, resolve_profile
from repro.utils.rng import DEFAULT_SEED

#: Compression regimes of Fig 11 ("Ideal" = infinite off-chip bandwidth).
FIG11_SCHEMES = ("NoCompression", "Profiled", "DeltaD16", "Ideal")


@dataclass(frozen=True)
class Fig11Row:
    network: str
    #: {scheme: speedup-over-VAA} for each accelerator.
    pra: dict[str, float]
    diffy: dict[str, float]
    diffy_stall_fraction: float


@dataclass(frozen=True)
class Fig11Result:
    rows: tuple[Fig11Row, ...]
    memory: str

    def mean_speedup(self, accelerator: str, scheme: str) -> float:
        key = {"PRA": "pra", "Diffy": "diffy"}[accelerator]
        return geomean(getattr(row, key)[scheme] for row in self.rows)


def per_layer_diffy_over_pra(
    models: tuple[str, ...] = CI_MODEL_NAMES,
    dataset: str = DEFAULT_DATASET,
    trace_count: int = DEFAULT_TRACE_COUNT,
    crop: int | None = None,
    seed: int = DEFAULT_SEED,
) -> dict[str, float]:
    """Per-layer Diffy/PRA cycle ratios across all models' layers.

    The paper (IV-A): "fairly uniform with a mean of 1.42x and a standard
    deviation of 0.32.  Diffy underperforms PRA only on a few noncritical
    layers ... by at most 10%."  Returns mean, std, the worst layer ratio,
    and the fraction of layers where Diffy loses to PRA.
    """
    import numpy as np

    from repro.arch.diffy import DiffyModel
    from repro.arch.pra import PRAModel
    from repro.experiments.common import traces_for

    diffy_model, pra_model = DiffyModel(), PRAModel()
    ratios = []
    for model in models:
        for trace in traces_for(model, dataset, trace_count, crop, seed=seed):
            for layer in trace:
                pra = pra_model.layer_cycles(layer).cycles
                diffy = diffy_model.layer_cycles(layer).cycles
                if diffy > 0 and pra > 0:
                    ratios.append(pra / diffy)
    arr = np.array(ratios)
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std()),
        "min": float(arr.min()),
        "fraction_slower": float((arr < 1.0).mean()),
    }


def _simulate(model, accelerator, scheme, memory, dataset, trace_count, crop, seed):
    if scheme == "Ideal":
        return simulate_network(
            model, accelerator, scheme="NoCompression", memory="Ideal",
            dataset_name=dataset, trace_count=trace_count, crop=crop, seed=seed,
        )
    return simulate_network(
        model, accelerator, scheme=scheme, memory=memory,
        dataset_name=dataset, trace_count=trace_count, crop=crop, seed=seed,
    )


def run(
    models: tuple[str, ...] = CI_MODEL_NAMES,
    memory: str = "DDR4-3200",
    dataset: str = DEFAULT_DATASET,
    trace_count: int = DEFAULT_TRACE_COUNT,
    schemes: tuple[str, ...] = FIG11_SCHEMES,
    crop: int | None = None,
    seed: int = DEFAULT_SEED,
) -> Fig11Result:
    rows = []
    for model in models:
        # VAA is compute-bound; its compression scheme is irrelevant to
        # performance (the paper makes the same observation).
        vaa = _simulate(model, "VAA", "NoCompression", memory, dataset, trace_count, crop, seed)
        pra = {}
        diffy = {}
        diffy_stall = 0.0
        for scheme in schemes:
            pra_res = _simulate(model, "PRA", scheme, memory, dataset, trace_count, crop, seed)
            diffy_res = _simulate(model, "Diffy", scheme, memory, dataset, trace_count, crop, seed)
            pra[scheme] = pra_res.speedup_over(vaa)
            diffy[scheme] = diffy_res.speedup_over(vaa)
            if scheme == "DeltaD16":
                diffy_stall = diffy_res.stall_fraction
        rows.append(
            Fig11Row(network=model, pra=pra, diffy=diffy, diffy_stall_fraction=diffy_stall)
        )
    return Fig11Result(rows=tuple(rows), memory=memory)


def compute(profile: Profile | None = None) -> Fig11Result:
    """Profile-scaled entry point for the golden-regression harness."""
    p = resolve_profile(profile)
    return run(
        models=p.pick_models(CI_MODEL_NAMES),
        trace_count=p.trace_count,
        crop=p.crop,
        seed=p.seed,
    )


def format_result(result: Fig11Result) -> str:
    schemes = list(result.rows[0].pra)
    headers = ["network"] + [f"PRA {s}" for s in schemes] + [f"Diffy {s}" for s in schemes]
    table_rows = []
    for row in result.rows:
        table_rows.append(
            [row.network]
            + [f"{row.pra[s]:.2f}x" for s in schemes]
            + [f"{row.diffy[s]:.2f}x" for s in schemes]
        )
    table_rows.append(
        ["geomean"]
        + [f"{result.mean_speedup('PRA', s):.2f}x" for s in schemes]
        + [f"{result.mean_speedup('Diffy', s):.2f}x" for s in schemes]
    )
    table = format_table(
        headers, table_rows,
        title=f"Fig 11: speedup over VAA (HD, {result.memory})",
    )
    ratio = result.mean_speedup("Diffy", "DeltaD16") / result.mean_speedup("PRA", "DeltaD16")
    return table + (
        f"\nDiffy/PRA at DeltaD16 = {ratio:.2f}x (paper: 1.41x); "
        f"stalls: " + ", ".join(
            f"{r.network}={r.diffy_stall_fraction * 100:.1f}%" for r in result.rows
        )
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(format_result(run()))
    stats = per_layer_diffy_over_pra()
    print(
        f"per-layer Diffy/PRA: mean {stats['mean']:.2f} std {stats['std']:.2f} "
        f"(paper: 1.42 / 0.32); worst layer {stats['min']:.2f}x, "
        f"{stats['fraction_slower'] * 100:.0f}% of layers slower than PRA "
        "(paper: a few noncritical layers, at most 10% slower)"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
