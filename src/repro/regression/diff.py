"""Tolerance-aware comparison of canonical result trees.

Structure (keys, lengths, types) and integer/string/bool leaves compare
exactly; float leaves compare within a relative+absolute tolerance that
can be widened per field via glob patterns on the field's path.

Paths are ``/``-joined from the root: ``rows/0/pra/DeltaD16``.  Rules
match with :func:`fnmatch.fnmatchcase`, first match wins::

    DiffConfig(rules=(ToleranceRule("rows/*/pra/*", rtol=1e-3),))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any

#: Sentinel strings the serializer uses for non-finite floats.
_NON_FINITE = {"NaN", "Infinity", "-Infinity"}


def _join(path: str, key: Any) -> str:
    """Slash-join without a leading separator at the root."""
    return f"{path}/{key}" if path else str(key)


@dataclass(frozen=True)
class ToleranceRule:
    """Float tolerance for every path matching ``pattern``."""

    pattern: str
    rtol: float
    atol: float = 0.0


@dataclass(frozen=True)
class DiffConfig:
    """Comparison policy: per-pattern rules, then defaults."""

    rules: tuple = ()
    default_rtol: float = 1e-6
    default_atol: float = 1e-12

    def tolerance_for(self, path: str) -> "tuple[float, float]":
        for rule in self.rules:
            if fnmatchcase(path, rule.pattern):
                return rule.rtol, rule.atol
        return self.default_rtol, self.default_atol


@dataclass(frozen=True)
class Deviation:
    """One point where the actual result left the golden."""

    path: str
    kind: str  # "type" | "missing" | "extra" | "length" | "value" | "float"
    expected: Any
    actual: Any
    detail: str = ""

    def render(self) -> str:
        extra = f"  ({self.detail})" if self.detail else ""
        return (
            f"  {self.path or '$'}: [{self.kind}] "
            f"expected {self.expected!r}, got {self.actual!r}{extra}"
        )


@dataclass
class _Walk:
    config: DiffConfig
    deviations: "list[Deviation]" = field(default_factory=list)

    def note(self, path: str, kind: str, expected: Any, actual: Any, detail: str = ""):
        self.deviations.append(Deviation(path, kind, expected, actual, detail))

    def visit(self, expected: Any, actual: Any, path: str) -> None:
        if _is_float_pair(expected, actual):
            self._visit_float(expected, actual, path)
            return
        if type(expected) is not type(actual):
            self.note(
                path, "type", expected, actual,
                f"{type(expected).__name__} -> {type(actual).__name__}",
            )
            return
        if isinstance(expected, dict):
            self._visit_dict(expected, actual, path)
        elif isinstance(expected, list):
            self._visit_list(expected, actual, path)
        elif expected != actual:
            self.note(path, "value", expected, actual)

    def _visit_float(self, expected: Any, actual: Any, path: str) -> None:
        if isinstance(expected, str) or isinstance(actual, str):
            # Non-finite sentinels compare exactly (and never match a number).
            if expected != actual:
                self.note(path, "float", expected, actual, "non-finite")
            return
        rtol, atol = self.config.tolerance_for(path)
        if abs(actual - expected) > atol + rtol * abs(expected):
            rel = abs(actual - expected) / abs(expected) if expected else float("inf")
            self.note(
                path, "float", expected, actual,
                f"rel err {rel:.3g} > rtol {rtol:g}",
            )

    def _visit_dict(self, expected: dict, actual: dict, path: str) -> None:
        for key in sorted(expected.keys() - actual.keys()):
            self.note(_join(path, key), "missing", expected[key], None, "key absent")
        for key in sorted(actual.keys() - expected.keys()):
            self.note(_join(path, key), "extra", None, actual[key], "unexpected key")
        for key in sorted(expected.keys() & actual.keys()):
            self.visit(expected[key], actual[key], _join(path, key))

    def _visit_list(self, expected: list, actual: list, path: str) -> None:
        if len(expected) != len(actual):
            self.note(
                path, "length", len(expected), len(actual),
                "sequence length changed",
            )
        for i, (e, a) in enumerate(zip(expected, actual)):
            self.visit(e, a, _join(path, i))


def _is_float_pair(expected: Any, actual: Any) -> bool:
    """True when the pair should go through float comparison.

    Either side being a float (or a non-finite sentinel string when the
    other side is numeric) routes to tolerance logic; int-vs-int pairs
    stay exact, and bools are never floats.
    """

    def floatish(v: Any) -> bool:
        return isinstance(v, float) or (isinstance(v, str) and v in _NON_FINITE)

    def numeric(v: Any) -> bool:
        return floatish(v) or (isinstance(v, int) and not isinstance(v, bool))

    return (floatish(expected) and numeric(actual)) or (
        floatish(actual) and numeric(expected)
    )


def compare(expected: Any, actual: Any, config: "DiffConfig | None" = None) -> "list[Deviation]":
    """All deviations of ``actual`` from the ``expected`` golden tree."""
    walk = _Walk(config or DiffConfig())
    walk.visit(expected, actual, "")
    return walk.deviations


def format_report(
    experiment: str, deviations: "list[Deviation]", limit: int = 40
) -> str:
    """Human-readable per-field report for one experiment's diff."""
    if not deviations:
        return f"{experiment}: OK"
    lines = [f"{experiment}: {len(deviations)} deviation(s) from golden"]
    lines += [d.render() for d in deviations[:limit]]
    if len(deviations) > limit:
        lines.append(f"  ... and {len(deviations) - limit} more")
    lines.append(
        "  (intended change? regenerate with: "
        f"python -m repro.regression update {experiment})"
    )
    return "\n".join(lines)
