"""Session-affinity routing policies for the serving fleet.

A video session's frames are only cheap on the node that holds the
session's previous-frame state (:mod:`repro.serve.state`), so the
front-end router is not a plain load balancer: every placement decision
trades load spread against state locality.  Four policies span that
trade-off:

- ``random`` — per-request uniform scatter.  No affinity at all; the
  floor every stickier policy must beat on warm fraction.
- ``hash`` — consistent hashing of the session id onto a ring of
  virtual nodes.  Perfect affinity while topology is stable and minimal
  remapping when it changes, but load-blind: an unlucky hash puts more
  sessions on one node and that node sheds.
- ``least_loaded`` — per-request pick of the node with the smallest
  backlog estimate.  Excellent load spread, no affinity (consecutive
  frames scatter), so temporal state rarely helps.
- ``state_aware`` — sticky to the node that holds the session's state;
  new (or displaced) sessions are placed on the active node with the
  fewest live sessions.  Never routes to a draining node.

All policies are deterministic: node choices depend only on the arrival
stream, the seed, and topology events — never on Python ``hash()`` or
iteration order of unordered containers.  Hashing uses the repo's
BLAKE2b seed derivation (:func:`repro.utils.rng.derive_seed`), which is
stable across processes and Python versions.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from typing import Iterable, Optional, Sequence

from repro.utils.rng import DEFAULT_SEED, derive_seed, rng_for
from repro.utils.validation import check_positive

__all__ = [
    "ROUTING_POLICIES",
    "stable_hash",
    "Router",
    "RandomRouter",
    "ConsistentHashRouter",
    "LeastLoadedRouter",
    "StateAwareRouter",
    "make_router",
]

#: Policy names accepted by :func:`make_router`, in ladder order.
ROUTING_POLICIES = ("random", "hash", "least_loaded", "state_aware")


def stable_hash(*keys: object) -> int:
    """Stable 63-bit hash of the keys (BLAKE2b; process-independent)."""
    return derive_seed(0, *keys)


class Router:
    """Base router: node membership plus the draining life-cycle.

    A node is *active* (routable), *draining* (still serving what it
    has, but receives no new routes — scale-down announced) or removed.
    Subclasses implement :meth:`route`; topology mutations funnel
    through the hooks so policy-specific structures stay in sync.
    """

    policy = "base"

    def __init__(self, nodes: Iterable[int]):
        self._active: "list[int]" = sorted(set(nodes))
        if not self._active:
            raise ValueError("router needs at least one node")
        self._draining: "set[int]" = set()

    # ---- topology --------------------------------------------------------

    @property
    def active_nodes(self) -> "tuple[int, ...]":
        """Routable nodes (sorted, draining excluded)."""
        return tuple(n for n in self._active if n not in self._draining)

    @property
    def draining_nodes(self) -> "tuple[int, ...]":
        return tuple(sorted(self._draining))

    def is_routable(self, node: int) -> bool:
        return node in self._active and node not in self._draining

    def add_node(self, node: int) -> None:
        if node in self._active:
            raise ValueError(f"node {node} already present")
        bisect.insort(self._active, node)
        self._on_add(node)

    def drain_node(self, node: int) -> None:
        """Stop routing new work to ``node``; it stays up until removed."""
        if node not in self._active:
            raise ValueError(f"node {node} not present")
        if len(self._active) - len(self._draining) <= 1 and node not in self._draining:
            raise ValueError("cannot drain the last routable node")
        self._draining.add(node)

    def remove_node(self, node: int) -> None:
        if node not in self._active:
            raise ValueError(f"node {node} not present")
        self._active.remove(node)
        self._draining.discard(node)
        self._on_remove(node)

    def _on_add(self, node: int) -> None:  # pragma: no cover - hook default
        pass

    def _on_remove(self, node: int) -> None:  # pragma: no cover - hook default
        pass

    # ---- routing ---------------------------------------------------------

    def route(self, session_id: int, now: float) -> int:
        """Pick the node for one request of ``session_id`` arriving ``now``."""
        raise NotImplementedError


class RandomRouter(Router):
    """Uniform per-request scatter over the routable nodes (seeded)."""

    policy = "random"

    def __init__(self, nodes: Iterable[int], seed: int = DEFAULT_SEED):
        super().__init__(nodes)
        self._rng = rng_for(seed, "fleet-random-router")

    def route(self, session_id: int, now: float) -> int:
        candidates = self.active_nodes
        return candidates[int(self._rng.integers(len(candidates)))]


class ConsistentHashRouter(Router):
    """Consistent hashing with virtual nodes.

    Each node owns ``vnodes`` points on a hash ring; a session maps to
    the first point clockwise of its own hash.  Adding or removing one
    node remaps only the sessions whose arcs that node's points cover —
    about ``sessions / N`` of them — which is the whole reason this
    policy exists.  Draining nodes keep their ring points but lookups
    skip them, so drained traffic spills to each arc's next owner
    instead of reshuffling everyone.
    """

    policy = "hash"

    def __init__(self, nodes: Iterable[int], vnodes: int = 64):
        check_positive("vnodes", vnodes)
        self.vnodes = int(vnodes)
        self._ring: "list[tuple[int, int]]" = []  # (point, node), sorted
        super().__init__(nodes)
        for node in self._active:
            self._on_add(node)

    def _on_add(self, node: int) -> None:
        for j in range(self.vnodes):
            bisect.insort(self._ring, (stable_hash("ring", node, j), node))

    def _on_remove(self, node: int) -> None:
        self._ring = [(p, n) for p, n in self._ring if n != node]

    def route(self, session_id: int, now: float) -> int:
        point = stable_hash("session", session_id)
        start = bisect.bisect_right(self._ring, (point, -1))
        size = len(self._ring)
        for step in range(size):
            node = self._ring[(start + step) % size][1]
            if node not in self._draining:
                return node
        raise RuntimeError("no routable node on the ring")  # pragma: no cover


class LeastLoadedRouter(Router):
    """Per-request pick of the node with the smallest backlog estimate.

    The router cannot see inside the nodes (that coupling would make
    shards order-dependent), so it keeps the classic front-end estimate:
    a virtual finish time per node, advanced by ``est_service_s`` per
    routed request and floored at ``now``.  Ties break on the lowest
    node id, keeping the policy deterministic.
    """

    policy = "least_loaded"

    def __init__(self, nodes: Iterable[int], est_service_s: float):
        check_positive("est_service_s", est_service_s)
        self.est_service_s = float(est_service_s)
        super().__init__(nodes)
        self._finish: "dict[int, float]" = {n: 0.0 for n in self._active}

    def _on_add(self, node: int) -> None:
        self._finish[node] = 0.0

    def _on_remove(self, node: int) -> None:
        self._finish.pop(node, None)

    def backlog_s(self, node: int, now: float) -> float:
        return max(self._finish.get(node, 0.0) - now, 0.0)

    def route(self, session_id: int, now: float) -> int:
        best = min(self.active_nodes, key=lambda n: (self.backlog_s(n, now), n))
        self._finish[best] = max(self._finish[best], now) + self.est_service_s
        return best


class StateAwareRouter(Router):
    """Sticky routing to the node holding the session's temporal state.

    A session's first frame is placed on the routable node with the
    fewest live sessions (load-aware placement); every later frame
    follows the session to that node, because that is where its
    previous-frame state lives.  Sessions idle longer than
    ``session_ttl_s`` are expired from the table (their state would have
    been evicted anyway).  If a session's node is draining or gone, the
    session is re-placed — and pays the migration re-anchor the fleet
    report accounts for.  A draining node is **never** returned.
    """

    policy = "state_aware"

    def __init__(self, nodes: Iterable[int], session_ttl_s: float):
        check_positive("session_ttl_s", session_ttl_s)
        self.session_ttl_s = float(session_ttl_s)
        super().__init__(nodes)
        #: session -> (node, last routed time); insertion order = LRU.
        self._sessions: "OrderedDict[int, tuple[int, float]]" = OrderedDict()
        self._live: "dict[int, int]" = {n: 0 for n in self._active}

    def _on_add(self, node: int) -> None:
        self._live[node] = 0

    def _on_remove(self, node: int) -> None:
        self._live.pop(node, None)

    def _expire(self, now: float) -> None:
        while self._sessions:
            sid, (node, last) = next(iter(self._sessions.items()))
            if last + self.session_ttl_s >= now:
                break
            del self._sessions[sid]
            if node in self._live:
                self._live[node] -= 1

    def route(self, session_id: int, now: float) -> int:
        self._expire(now)
        entry = self._sessions.get(session_id)
        if entry is not None:
            node = entry[0]
            if self.is_routable(node):
                self._sessions[session_id] = (node, now)
                self._sessions.move_to_end(session_id)
                return node
            del self._sessions[session_id]
            if node in self._live:
                self._live[node] -= 1
        node = min(self.active_nodes, key=lambda n: (self._live[n], n))
        self._sessions[session_id] = (node, now)
        self._live[node] += 1
        return node


def make_router(
    policy: str,
    nodes: Sequence[int],
    seed: int = DEFAULT_SEED,
    vnodes: int = 64,
    est_service_s: float = 1.0,
    session_ttl_s: Optional[float] = None,
) -> Router:
    """Construct the named routing policy over ``nodes``."""
    if policy == "random":
        return RandomRouter(nodes, seed=seed)
    if policy == "hash":
        return ConsistentHashRouter(nodes, vnodes=vnodes)
    if policy == "least_loaded":
        return LeastLoadedRouter(nodes, est_service_s=est_service_s)
    if policy == "state_aware":
        return StateAwareRouter(nodes, session_ttl_s=session_ttl_s or 1e9)
    raise ValueError(f"unknown routing policy {policy!r}; expected one of {ROUTING_POLICIES}")
