"""End-to-end simulation: traces -> per-layer cycles -> network time/FPS.

This is the main entry point of the architecture package.  For one
(network, accelerator, compression scheme, memory system, resolution)
combination, :func:`simulate_network`:

1. collects seeded activation traces on crops (cached),
2. runs the accelerator's cycle model per layer and averages
   cycles-per-window over the traces,
3. scales to the target resolution (fully-convolutional networks have
   resolution-invariant per-window statistics — see DESIGN.md),
4. applies the compression-aware off-chip traffic model and the memory
   system's bandwidth to get per-layer stalls (double-buffered overlap:
   layer time = max(compute, memory)),
5. aggregates into a :class:`NetworkResult` with FPS, utilization
   breakdown, and energy hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Optional, Sequence

import numpy as np

from repro.arch.config import (
    AcceleratorConfig,
    DIFFY_CONFIG,
    PRA_CONFIG,
    VAA_CONFIG,
)
from repro.arch.cycles import LayerCycles
from repro.arch.diffy import DiffyModel
from repro.arch.memory import MemorySystem, memory_system
from repro.arch.pra import PRAModel
from repro.arch.scnn import SCNNModel
from repro.arch.vaa import VAAModel
from repro.cache import store as cache_store
from repro.compression.footprint import imap_precisions, omap_precisions
from repro.compression.traffic import LayerTraffic, network_traffic
from repro.data.datasets import dataset
from repro.models.inputs import adapt_input
from repro.models.registry import get_model_spec, prepare_model
from repro.nn.shapes import conv_layer_shapes
from repro.nn.trace import ActivationTrace
from repro.utils import timing
from repro.utils.rng import DEFAULT_SEED

#: Default off-chip memory interface of the headline results (Section IV-A).
DEFAULT_MEMORY = "DDR4-3200"

#: Default compression scheme (the paper's own).
DEFAULT_SCHEME = "DeltaD16"

#: HD resolution the paper's headline numbers target.
HD_RESOLUTION = (1080, 1920)


@dataclass(frozen=True)
class LayerResult:
    """One layer's simulated execution at the target resolution."""

    name: str
    index: int
    windows: int
    compute_cycles: float
    compute_time_s: float
    mem_time_s: float
    utilization: float
    traffic: LayerTraffic

    #: Derived metrics the golden serializer records alongside the fields.
    __golden_properties__ = ("time_s", "stall_fraction", "useful_fraction")

    @property
    def time_s(self) -> float:
        """Layer latency with compute/memory overlap (double buffering)."""
        return max(self.compute_time_s, self.mem_time_s)

    @property
    def stall_s(self) -> float:
        """Time the compute fabric waits on off-chip memory."""
        return max(0.0, self.mem_time_s - self.compute_time_s)

    @property
    def useful_fraction(self) -> float:
        """Fraction of the layer's wall time doing useful term work."""
        return self.utilization * self.compute_time_s / self.time_s if self.time_s else 0.0

    @property
    def idle_fraction(self) -> float:
        """Sync/underutilization idle fraction of the layer's wall time."""
        return (1.0 - self.utilization) * self.compute_time_s / self.time_s if self.time_s else 0.0

    @property
    def stall_fraction(self) -> float:
        return self.stall_s / self.time_s if self.time_s else 0.0


@dataclass(frozen=True)
class NetworkResult:
    """Simulated execution of a whole network on one accelerator."""

    network: str
    accelerator: str
    scheme: str
    memory: str
    resolution: tuple[int, int]
    frequency_ghz: float
    layers: tuple[LayerResult, ...]

    #: Derived metrics the golden serializer records alongside the fields.
    __golden_properties__ = ("fps", "total_time_s", "stall_fraction", "traffic_bytes")

    @property
    def total_time_s(self) -> float:
        return sum(layer.time_s for layer in self.layers)

    @property
    def compute_time_s(self) -> float:
        return sum(layer.compute_time_s for layer in self.layers)

    @property
    def stall_s(self) -> float:
        return sum(layer.stall_s for layer in self.layers)

    @property
    def total_cycles(self) -> float:
        return sum(layer.compute_cycles for layer in self.layers)

    @property
    def fps(self) -> float:
        """Frames per second at the simulated resolution."""
        return 1.0 / self.total_time_s if self.total_time_s > 0 else float("inf")

    @property
    def traffic_bytes(self) -> float:
        return sum(layer.traffic.total_bytes for layer in self.layers)

    @property
    def stall_fraction(self) -> float:
        return self.stall_s / self.total_time_s if self.total_time_s else 0.0

    def speedup_over(self, other: "NetworkResult") -> float:
        """Wall-clock speedup of this result over another."""
        if self.network != other.network or self.resolution != other.resolution:
            raise ValueError(
                "speedup comparisons require the same network and resolution"
            )
        return other.total_time_s / self.total_time_s


def collect_traces(
    model_name: str,
    dataset_name: str = "HD33",
    count: int = 2,
    crop: Optional[int] = None,
    seed: int = DEFAULT_SEED,
) -> tuple[ActivationTrace, ...]:
    """Seeded activation traces for a model over dataset crops (cached).

    ``crop=None`` resolves to the model's default ``trace_crop`` *before*
    any cache lookup, so an explicit ``crop == spec.trace_crop`` and the
    default address the same entry (in memory and on disk).
    """
    spec = get_model_spec(model_name)
    size = crop if crop is not None else spec.trace_crop
    return _collect_traces(model_name, dataset_name, count, size, seed)


@lru_cache(maxsize=64)
def _collect_traces(
    model_name: str, dataset_name: str, count: int, size: int, seed: int
) -> tuple[ActivationTrace, ...]:
    return cache_store.fetch_or_compute(
        "traces",
        (model_name, dataset_name, count, size, seed),
        lambda: _trace_crops(model_name, dataset_name, count, size, seed),
    )


def _trace_crops(
    model_name: str, dataset_name: str, count: int, size: int, seed: int
) -> tuple[ActivationTrace, ...]:
    spec = get_model_spec(model_name)
    net = prepare_model(model_name, seed)
    ds = dataset(dataset_name)
    traces = []
    with timing.timed("sim.trace_crops"):
        for i in range(count):
            image = ds.crop(i % len(ds), size, seed=seed)
            traces.append(net.trace(adapt_input(spec.input_adapter, image)))
    return tuple(traces)


cache_store.register_memory_cache(_collect_traces.cache_clear)


def model_for(
    accelerator: str,
    config: Optional[AcceleratorConfig] = None,
    weight_sparsity: float = 0.0,
):
    """Instantiate a cycle model by accelerator name.

    ``accelerator`` is one of ``"VAA"``, ``"PRA"``, ``"Diffy"``, ``"VP"``
    (the speculative value-prediction engine, at its default operating
    point), or ``"SCNN"``/``"SCNN50"``/``"SCNN75"``/``"SCNN90"``.
    """
    if accelerator == "VAA":
        return VAAModel(config or VAA_CONFIG)
    if accelerator == "PRA":
        return PRAModel(config or PRA_CONFIG)
    if accelerator == "Diffy":
        return DiffyModel(config or DIFFY_CONFIG)
    if accelerator == "VP":
        from repro.arch.predict import ValuePredictionModel

        return ValuePredictionModel(config or PRA_CONFIG)
    if accelerator.startswith("SCNN"):
        sparsity = weight_sparsity
        if accelerator != "SCNN":
            sparsity = int(accelerator[4:]) / 100.0
        return SCNNModel(weight_sparsity=sparsity)
    raise ValueError(
        f"unknown accelerator {accelerator!r}; "
        "expected VAA, PRA, Diffy, VP, or SCNN[50|75|90]"
    )


def _mean_layer_cycles(
    model, traces: Sequence[ActivationTrace]
) -> list[LayerCycles]:
    """Per-layer cycle records averaged over traces."""
    per_trace = [[model.layer_cycles(layer) for layer in t] for t in traces]
    out = []
    for i in range(len(per_trace[0])):
        records = [pt[i] for pt in per_trace]
        ref = records[0]
        out.append(
            replace(
                ref,
                cycles=float(np.mean([r.cycles for r in records])),
                useful_terms=float(np.mean([r.useful_terms for r in records])),
                lane_capacity=float(np.mean([r.lane_capacity for r in records])),
            )
        )
    return out


def simulate_network(
    model_name: str,
    accelerator: str = "Diffy",
    scheme: str = DEFAULT_SCHEME,
    memory: str | MemorySystem = DEFAULT_MEMORY,
    channels: int = 1,
    resolution: tuple[int, int] = HD_RESOLUTION,
    config: Optional[AcceleratorConfig] = None,
    dataset_name: str = "HD33",
    trace_count: int = 2,
    crop: Optional[int] = None,
    seed: int = DEFAULT_SEED,
) -> NetworkResult:
    """Simulate one network end to end; see module docstring.

    ``memory`` may be a technology name (``"DDR4-3200"``, ``"Ideal"``, ...)
    or a prebuilt :class:`MemorySystem`.
    """
    with timing.timed("sim.simulate_network"):
        return _simulate_network(
            model_name, accelerator, scheme, memory, channels, resolution,
            config, dataset_name, trace_count, crop, seed,
        )


def _simulate_network(
    model_name, accelerator, scheme, memory, channels, resolution,
    config, dataset_name, trace_count, crop, seed,
) -> NetworkResult:
    mem = memory if isinstance(memory, MemorySystem) else memory_system(memory, channels)
    traces = collect_traces(model_name, dataset_name, trace_count, crop, seed)
    net = prepare_model(model_name, seed)
    model = model_for(accelerator, config)
    cfg_freq = getattr(model.config, "frequency_ghz", 1.0)

    with timing.timed("sim.layer_cycles"):
        cycle_records = _mean_layer_cycles(model, traces)
    shapes = conv_layer_shapes(net, *resolution)
    precisions = imap_precisions(traces)
    omap_precs = omap_precisions(traces)
    traffic = network_traffic(
        net, traces, scheme, resolution[0], resolution[1], precisions, omap_precs
    )

    layers = []
    for record, shape, lt in zip(cycle_records, shapes, traffic):
        scale = shape.windows / record.windows
        cycles = record.cycles * scale
        compute_s = cycles / (cfg_freq * 1e9)
        mem_s = mem.transfer_time_s(lt.total_bytes)
        layers.append(
            LayerResult(
                name=record.name,
                index=record.index,
                windows=shape.windows,
                compute_cycles=cycles,
                compute_time_s=compute_s,
                mem_time_s=mem_s,
                utilization=record.utilization,
                traffic=lt,
            )
        )
    return NetworkResult(
        network=model_name,
        accelerator=model.name,
        scheme=scheme,
        memory=mem.name,
        resolution=resolution,
        frequency_ghz=cfg_freq,
        layers=tuple(layers),
    )
