"""Weight-side compression: MSR compaction, INT8 calibration, schemes.

Every activation ladder in the repo (Fig 5 footprints, Fig 14 traffic,
the serve/fleet stacks) prices weights as dense 16-bit filters.  This
package adds the weight axis:

- :mod:`repro.weights.quant` — MSR-aware symmetric INT8 weight
  quantization (quantile-calibrated power-of-two scales, lossless).
- :mod:`repro.weights.msr` — the MSR (Most-Significant-Run) compaction
  codec: per-column run-width headers, a compensation list for
  out-of-band weights, both codec backends byte-identical.
- :mod:`repro.weights.schemes` — weight storage schemes (``Raw16W``,
  ``Raw8W``, ``MSR4W``) and network-level pricing helpers, composable
  with the activation schemes in the Fig 5/Fig 14 ladders.
"""

from repro.weights.msr import MSRCodec
from repro.weights.quant import (
    msr_coverage,
    network_int8_weights,
    quantize_weights_int8,
    weight_scale_int8,
)
from repro.weights.schemes import (
    WEIGHT_SCHEMES,
    WeightScheme,
    network_weight_bits,
    network_weight_bytes,
    weight_scheme,
)

__all__ = [
    "MSRCodec",
    "WEIGHT_SCHEMES",
    "WeightScheme",
    "msr_coverage",
    "network_int8_weights",
    "network_weight_bits",
    "network_weight_bytes",
    "quantize_weights_int8",
    "weight_scale_int8",
    "weight_scheme",
]
