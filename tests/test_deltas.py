"""Tests for the spatial delta transform and its exact inverse."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.deltas import (
    delta_magnitude_stats,
    reconstruct_from_deltas,
    spatial_deltas,
)

int_maps = hnp.arrays(
    dtype=np.int64,
    shape=hnp.array_shapes(min_dims=2, max_dims=3, min_side=1, max_side=12),
    elements=st.integers(min_value=-30000, max_value=30000),
)


class TestSpatialDeltas:
    def test_x_axis_semantics(self):
        fmap = np.array([[1, 4, 9, 16]])
        assert np.array_equal(spatial_deltas(fmap, "x"), [[1, 3, 5, 7]])

    def test_y_axis_semantics(self):
        fmap = np.array([[1], [4], [9]])
        assert np.array_equal(spatial_deltas(fmap, "y"), [[1], [3], [5]])

    def test_stride_2(self):
        fmap = np.array([[10, 20, 30, 40, 50]])
        out = spatial_deltas(fmap, "x", stride=2)
        assert np.array_equal(out, [[10, 20, 20, 20, 20]])

    def test_head_kept_raw(self):
        fmap = np.array([[7, 7, 7]])
        out = spatial_deltas(fmap, "x")
        assert out[0, 0] == 7
        assert np.all(out[0, 1:] == 0)

    def test_channel_dims_independent(self):
        fmap = np.stack([np.arange(4).reshape(1, 4), np.arange(0, 40, 10).reshape(1, 4)])
        out = spatial_deltas(fmap, "x")
        assert np.array_equal(out[0], [[0, 1, 1, 1]])
        assert np.array_equal(out[1], [[0, 10, 10, 10]])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            spatial_deltas(np.array([1, 2, 3]))

    def test_rejects_bad_axis(self):
        with pytest.raises(ValueError):
            spatial_deltas(np.zeros((2, 2)), "z")

    def test_constant_map_deltas_are_sparse(self):
        fmap = np.full((4, 6, 6), 123)
        out = spatial_deltas(fmap)
        assert (out == 0).sum() == 4 * 6 * 5


class TestReconstruct:
    @given(int_maps)
    @settings(max_examples=60)
    def test_roundtrip_x(self, fmap):
        assert np.array_equal(reconstruct_from_deltas(spatial_deltas(fmap, "x"), "x"), fmap)

    @given(int_maps)
    @settings(max_examples=60)
    def test_roundtrip_y(self, fmap):
        assert np.array_equal(reconstruct_from_deltas(spatial_deltas(fmap, "y"), "y"), fmap)

    @given(int_maps, st.integers(min_value=1, max_value=4))
    @settings(max_examples=60)
    def test_roundtrip_strided(self, fmap, stride):
        for axis in ("x", "y"):
            deltas = spatial_deltas(fmap, axis, stride)
            assert np.array_equal(reconstruct_from_deltas(deltas, axis, stride), fmap)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            reconstruct_from_deltas(np.array([1, 2]))


class TestDeltaMagnitudeStats:
    def test_smooth_map_compresses(self):
        y = np.cumsum(np.ones((1, 1, 100)), axis=-1) * 50  # smooth ramp
        stats = delta_magnitude_stats(y)
        assert stats["magnitude_ratio"] > 10

    def test_keys_present(self):
        stats = delta_magnitude_stats(np.zeros((1, 2, 2), dtype=np.int64))
        for key in (
            "raw_mean_abs",
            "delta_mean_abs",
            "raw_sparsity",
            "delta_sparsity",
            "magnitude_ratio",
        ):
            assert key in stats

    def test_all_zero_map(self):
        stats = delta_magnitude_stats(np.zeros((1, 3, 3), dtype=np.int64))
        assert stats["raw_sparsity"] == 1.0
        assert stats["magnitude_ratio"] == float("inf")
