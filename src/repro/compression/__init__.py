"""Activation storage/compression schemes and footprint/traffic accounting.

Implements the paper's full scheme family bit-exactly (including metadata):
NoCompression, RLEz, RLE, Profiled, RawD{8,16,256} and DeltaD{16,256}
(Figs 5 and 14, Table V).
"""

from repro.compression.schemes import (
    CompressionScheme,
    NoCompression,
    RLEZero,
    RLERepeat,
    Profiled,
    RawDynamic,
    DeltaDynamic,
    SCHEMES,
    scheme,
)
from repro.compression.footprint import (
    LayerFootprint,
    network_footprint,
    normalized_footprints,
    am_requirement_bytes,
)
from repro.compression.codec import (
    BitReader,
    BitWriter,
    CODEC_BACKENDS,
    Encoded,
    GroupCodec,
    RLEZeroCodec,
    active_codec_backend,
    codec_stats,
    reset_codec_stats,
)
from repro.compression.traffic import (
    LayerTraffic,
    network_traffic,
    normalized_traffic,
)

__all__ = [
    "CompressionScheme",
    "NoCompression",
    "RLEZero",
    "RLERepeat",
    "Profiled",
    "RawDynamic",
    "DeltaDynamic",
    "SCHEMES",
    "scheme",
    "LayerFootprint",
    "network_footprint",
    "normalized_footprints",
    "am_requirement_bytes",
    "CODEC_BACKENDS",
    "BitReader",
    "BitWriter",
    "Encoded",
    "GroupCodec",
    "RLEZeroCodec",
    "active_codec_backend",
    "codec_stats",
    "reset_codec_stats",
    "LayerTraffic",
    "network_traffic",
    "normalized_traffic",
]
