"""MSR (Most-Significant-Run) weight compaction codec.

INT8 weights of trained networks concentrate near zero: the top ``r``
bits of almost every weight are a sign-extension run, so the weight fits
``bits - r + 1`` signed bits.  The Low-Cost-AI-Accelerator related work
measures 98.9-99.98% of weights carrying MSR-4 on 8-bit values, with the
few out-of-band weights handled by a small per-column compensation path
(about 3 entries per 256-weight systolic column in the worst case).

Wire format (per ``column_size``-weight column, tail zero padded):

- a run header (``run - 1`` in ``RUN_BITS`` bits): the column's MSR run
  width, chosen per column to minimize its encoded size (Dynamic-Stripes
  style adaptivity, capped at ``max_msr`` — the datapath's design point);
- a compensation count ``m`` (``COUNT_BITS`` bits) followed by ``m``
  entries of (``INDEX_BITS``-bit position, ``bits``-bit raw weight) for
  the out-of-band weights;
- ``column_size`` compact fields of ``bits - run + 1`` bits each (two's
  complement; compensated positions store a zero placeholder so payload
  offsets stay fixed and vectorizable);
- with ``checksum=True``, a CRC-8 of the column's header+entry+payload
  bits (the same detection rung the activation streams use).

Both codec backends (``REPRO_CODEC_BACKEND={reference,vectorized}``)
implement the format byte-identically, including the lenient-decode
semantics of the activation codecs: strict decodes raise on checksum
mismatch / exhaustion / bit-count disagreement with the same message
shapes as :class:`repro.compression.codec.GroupCodec` (with "column"
in place of "group"), lenient decodes zero-fill and flag rejected
columns, keep a partial column's shifted-in values without checksums,
and flag the whole tail on desynchronization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.compression import bitplane
from repro.compression.bitplane import CHECKSUM_BITS, _chunked, crc8_contrib
from repro.compression.codec import (
    BitReader,
    BitWriter,
    Encoded,
    _as_int_stream,
    _check_encoded,
    _from_twos_complement,
    _note_codec_call,
    _to_twos_complement,
    active_codec_backend,
    crc8_bits,
)
from repro.utils.bits import signed_range
from repro.utils.validation import check_positive

__all__ = ["MSRCodec", "MSRLayout"]


def _bit_weights(width: int) -> np.ndarray:
    return bitplane._bit_weights(width)


def _scatter_field(
    bits_arr: np.ndarray, starts: np.ndarray, values: np.ndarray, width: int
) -> None:
    """Scatter fixed-width unsigned fields at per-item bit offsets."""
    shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
    planes = ((np.asarray(values, dtype=np.int64)[:, None] >> shifts) & 1).astype(
        np.uint8
    )
    pos = np.asarray(starts, dtype=np.int64)[:, None] + np.arange(
        width, dtype=np.int64
    )
    bits_arr[pos.reshape(-1)] = planes.reshape(-1)


@dataclass(frozen=True)
class MSRLayout:
    """Accounting view of one stream's column layout (no packing)."""

    columns: int
    #: Zero-padded values, shaped (columns, column_size).
    vals: np.ndarray
    #: Chosen run width per column (1..max_msr).
    runs: np.ndarray
    #: Compensation-entry count per column.
    comp_counts: np.ndarray
    #: Encoded bits per column, checksum included.
    spans: np.ndarray
    #: Bit offset of each column's start.
    offsets: np.ndarray
    total_bits: int


class MSRCodec:
    """Per-column MSR-width compaction with a compensation list.

    ``bits`` is the raw weight width (8 for INT8), ``max_msr`` the
    largest run width the compact datapath supports (4 reproduces the
    related work's MSR-4 design point: a 5-bit compact path), and
    ``column_size`` the systolic column length the compensation path is
    provisioned per.
    """

    def __init__(
        self,
        bits: int = 8,
        max_msr: int = 4,
        column_size: int = 256,
        checksum: bool = False,
    ):
        check_positive("column_size", column_size)
        if not 2 <= bits <= 16:
            raise ValueError(f"bits must be in [2, 16], got {bits}")
        if not 1 <= max_msr <= bits - 1:
            raise ValueError(
                f"max_msr must be in [1, bits-1] = [1, {bits - 1}], got {max_msr}"
            )
        self.bits = int(bits)
        self.max_msr = int(max_msr)
        self.column_size = int(column_size)
        self.checksum = bool(checksum)
        self._run_bits = max(1, (self.max_msr - 1).bit_length())
        if (1 << self._run_bits) > self.bits:
            # Every decodable run header must name a positive compact
            # width, or a corrupted header would be undecodable rather
            # than merely desynchronizing.
            raise ValueError(
                f"max_msr {max_msr} needs {self._run_bits}-bit run headers "
                f"whose range exceeds bits={bits}"
            )
        self._count_bits = self.column_size.bit_length()
        self._index_bits = max(1, (self.column_size - 1).bit_length())
        self._entry_bits = self._index_bits + self.bits
        self._head_bits = self._run_bits + self._count_bits

    # ---- accounting ------------------------------------------------------

    def _validated(self, values: np.ndarray) -> np.ndarray:
        flat = _as_int_stream("weights", values, signed=True)
        if flat.size:
            lo, hi = signed_range(self.bits)
            mn, mx = int(flat.min()), int(flat.max())
            if mn < lo or mx > hi:
                raise ValueError(
                    f"weights exceed the signed {self.bits}-bit range: [{mn}, {mx}]"
                )
        return flat

    def layout(self, values: np.ndarray) -> MSRLayout:
        """Column layout of a stream: runs, compensation counts, offsets."""
        return self._layout(self._validated(values))

    def _layout(self, flat: np.ndarray) -> MSRLayout:
        columns = -(-flat.size // self.column_size) if flat.size else 0
        padded = np.zeros(columns * self.column_size, dtype=np.int64)
        padded[: flat.size] = flat
        vals = padded.reshape(columns, self.column_size)
        n_runs = self.max_msr
        sizes = np.empty((columns, n_runs), dtype=np.int64)
        counts = np.empty((columns, n_runs), dtype=np.int64)
        for r in range(1, n_runs + 1):
            compact = self.bits - r + 1
            lo, hi = signed_range(compact)
            m = ((vals < lo) | (vals > hi)).sum(axis=1)
            counts[:, r - 1] = m
            sizes[:, r - 1] = m * self._entry_bits + self.column_size * compact
        # Per-column argmin; ties break toward the larger run (better
        # coverage at equal size).  Matches the reference encoder's
        # ascending scan with `<=`.
        if columns:
            choice = n_runs - 1 - sizes[:, ::-1].argmin(axis=1)
        else:
            choice = np.zeros(0, dtype=np.int64)
        runs = choice + 1
        comp_counts = counts[np.arange(columns), choice] if columns else counts.reshape(-1)
        tail = CHECKSUM_BITS if self.checksum else 0
        spans = self._head_bits + comp_counts * self._entry_bits
        spans = spans + self.column_size * (self.bits - runs + 1) + tail
        offsets = np.zeros(columns + 1, dtype=np.int64)
        np.cumsum(spans, out=offsets[1:])
        return MSRLayout(
            columns=columns,
            vals=vals,
            runs=runs,
            comp_counts=comp_counts,
            spans=spans,
            offsets=offsets[:-1],
            total_bits=int(offsets[-1]),
        )

    def encoded_bits(self, values: np.ndarray) -> int:
        """Exact encoded size in bits (the schemes' accounting hook)."""
        return self._layout(self._validated(values)).total_bits

    def coverage(self, values: np.ndarray) -> float:
        """Fraction of stored weights carried in-band (uncompensated)."""
        flat = self._validated(values)
        if not flat.size:
            return 1.0
        lay = self._layout(flat)
        return 1.0 - int(lay.comp_counts.sum()) / flat.size

    def column_stats(self, values: np.ndarray) -> dict:
        """Telemetry summary: columns, compensation, run histogram."""
        flat = self._validated(values)
        lay = self._layout(flat)
        hist = {
            int(r): int(n)
            for r, n in zip(*np.unique(lay.runs, return_counts=True))
        }
        compensated = int(lay.comp_counts.sum())
        return {
            "columns": lay.columns,
            "compensated": compensated,
            "coverage": 1.0 - compensated / flat.size if flat.size else 1.0,
            "run_histogram": hist,
            "total_bits": lay.total_bits,
            "bits_per_weight": lay.total_bits / flat.size if flat.size else 0.0,
        }

    # ---- encode ----------------------------------------------------------

    def encode(self, values: np.ndarray) -> Encoded:
        """Pack a flat weight stream; tail columns are zero padded."""
        flat = self._validated(values)
        backend = active_codec_backend()
        if backend == "vectorized":
            encoded = self._encode_vectorized(flat)
        else:
            encoded = self._encode_reference(flat)
        _note_codec_call("encode", backend, encoded.bits, encoded.values, codec="weight")
        return encoded

    def _choose_run(self, col: np.ndarray) -> "tuple[int, list[int]]":
        """Reference run choice: minimal size, ties to the larger run."""
        best_run, best_size, best_comp = 1, None, np.zeros(0, dtype=np.int64)
        for run in range(1, self.max_msr + 1):
            compact = self.bits - run + 1
            lo, hi = signed_range(compact)
            oob = np.flatnonzero((col < lo) | (col > hi))
            size = oob.size * self._entry_bits + self.column_size * compact
            if best_size is None or size <= best_size:
                best_run, best_size, best_comp = run, size, oob
        return best_run, [int(i) for i in best_comp]

    def _encode_reference(self, flat: np.ndarray) -> Encoded:
        """The value-at-a-time ``BitWriter`` path (backend ``reference``)."""
        writer = BitWriter()
        columns = -(-flat.size // self.column_size) if flat.size else 0
        padded = np.zeros(columns * self.column_size, dtype=np.int64)
        padded[: flat.size] = flat
        for c in range(columns):
            col = padded[c * self.column_size : (c + 1) * self.column_size]
            run, comp = self._choose_run(col)
            compact = self.bits - run + 1
            lo, hi = signed_range(compact)
            start = len(writer)
            writer.write(run - 1, self._run_bits)
            writer.write(len(comp), self._count_bits)
            for idx in comp:
                writer.write(idx, self._index_bits)
                writer.write(_to_twos_complement(int(col[idx]), self.bits), self.bits)
            for v in col:
                v = int(v)
                stored = v if lo <= v <= hi else 0
                writer.write(_to_twos_complement(stored, compact), compact)
            if self.checksum:
                writer.write(
                    crc8_bits(writer.bit_slice(start, len(writer))), CHECKSUM_BITS
                )
        bits = len(writer)
        expected = self._layout(flat).total_bits
        if bits != expected:
            raise AssertionError(
                f"codec wrote {bits} bits but accounting says {expected}"
            )
        return Encoded(data=writer.getvalue(), bits=bits, values=int(flat.size))

    def _encode_vectorized(self, flat: np.ndarray) -> Encoded:
        """Whole-array bit-plane path (backend ``vectorized``)."""
        lay = self._layout(flat)
        bits_arr = np.zeros(lay.total_bits, dtype=np.uint8)
        if lay.columns:
            offs = lay.offsets
            _scatter_field(bits_arr, offs, lay.runs - 1, self._run_bits)
            _scatter_field(
                bits_arr, offs + self._run_bits, lay.comp_counts, self._count_bits
            )
            head = self._head_bits
            for r in map(int, np.unique(lay.runs)):
                sel = np.flatnonzero(lay.runs == r)
                compact = self.bits - r + 1
                lo, hi = signed_range(compact)
                sub = lay.vals[sel]
                oob = (sub < lo) | (sub > hi)
                col_i, idx_i = np.nonzero(oob)  # row-major: entry order
                if col_i.size:
                    counts = oob.sum(axis=1)
                    starts = np.repeat(np.cumsum(counts) - counts, counts)
                    rank = np.arange(col_i.size, dtype=np.int64) - starts
                    base = offs[sel][col_i] + head + rank * self._entry_bits
                    _scatter_field(bits_arr, base, idx_i, self._index_bits)
                    raw = sub[col_i, idx_i] & ((np.int64(1) << self.bits) - 1)
                    _scatter_field(bits_arr, base + self._index_bits, raw, self.bits)
                stored = np.where(oob, 0, sub) & ((np.int64(1) << compact) - 1)
                span = self.column_size * compact
                pstart = offs[sel] + head + oob.sum(axis=1) * self._entry_bits
                vshift = np.arange(compact - 1, -1, -1, dtype=np.int64)
                rel = np.arange(span, dtype=np.int64)
                for chunk in _chunked(np.arange(sel.size), span):
                    planes = ((stored[chunk][..., None] >> vshift) & 1).astype(np.uint8)
                    pos = pstart[chunk][:, None] + rel
                    bits_arr[pos.reshape(-1)] = planes.reshape(len(chunk), span).reshape(-1)
            if self.checksum:
                span_nocrc = lay.spans - CHECKSUM_BITS
                for s in map(int, np.unique(span_nocrc)):
                    sel = np.flatnonzero(span_nocrc == s)
                    contrib = crc8_contrib(s)
                    for chunk in _chunked(sel, s):
                        pos = offs[chunk][:, None] + np.arange(s, dtype=np.int64)
                        msg = bits_arr[pos.reshape(-1)].reshape(len(chunk), s)
                        crc = np.bitwise_xor.reduce(msg * contrib, axis=1)
                        _scatter_field(
                            bits_arr, offs[chunk] + s, crc.astype(np.int64), CHECKSUM_BITS
                        )
        return Encoded(
            data=np.packbits(bits_arr).tobytes(),
            bits=lay.total_bits,
            values=int(flat.size),
        )

    # ---- decode ----------------------------------------------------------

    def decode(self, encoded: Encoded, strict: bool = True) -> np.ndarray:
        """Unpack back to the original flat stream (padding stripped)."""
        return self.decode_flagged(encoded, strict=strict)[0]

    def decode_flagged(
        self,
        encoded: Encoded,
        strict: bool = True,
        suspect_bits: "tuple[tuple[int, int], ...]" = (),
    ) -> "tuple[np.ndarray, tuple[int, ...]]":
        """Decode and report the column indices the checksum rejected.

        Same contract as ``GroupCodec.decode_flagged``, per column: strict
        raises on any inconsistency; lenient zero-fills and flags rejected
        columns (plus the whole tail past an exhaustion or desync), keeps
        a partial column's shifted-in compact values without checksums
        (compensation applies only on column completion), and rejects any
        column overlapping a ``suspect_bits`` range even when its CRC-8
        happens to pass.
        """
        if strict:
            _check_encoded(encoded)
        backend = active_codec_backend()
        if backend == "vectorized":
            result = self._decode_flagged_vectorized(encoded, strict, tuple(suspect_bits))
        else:
            result = self._decode_flagged_reference(encoded, strict, tuple(suspect_bits))
        _note_codec_call(
            "decode", backend, encoded.bits, encoded.values, codec="weight"
        )
        return result

    def _decode_flagged_reference(
        self,
        encoded: Encoded,
        strict: bool,
        suspect_bits: "tuple[tuple[int, int], ...]",
    ) -> "tuple[np.ndarray, tuple[int, ...]]":
        """The value-at-a-time ``BitReader`` path (backend ``reference``)."""
        reader = BitReader(encoded.data)
        out: list[int] = []
        flagged: list[int] = []
        columns = -(-encoded.values // self.column_size)
        exhausted_at: "Optional[int]" = None
        col_vals: list[int] = []
        try:
            for g in range(columns):
                col_vals = []
                comp: "list[tuple[int, int]]" = []
                start = reader.bits_read
                run = reader.read(self._run_bits) + 1
                m = reader.read(self._count_bits)
                for _ in range(m):
                    idx = reader.read(self._index_bits)
                    raw = reader.read(self.bits)
                    comp.append((idx, _from_twos_complement(raw, self.bits)))
                compact = self.bits - run + 1
                for _ in range(self.column_size):
                    raw = reader.read(compact)
                    col_vals.append(_from_twos_complement(raw, compact))
                if self.checksum:
                    end = reader.bits_read
                    stored = reader.read(CHECKSUM_BITS)
                    span_end = reader.bits_read
                    known_bad = any(
                        start < hi and lo < span_end for lo, hi in suspect_bits
                    )
                    if known_bad or stored != crc8_bits(reader.bit_slice(start, end)):
                        if strict:
                            raise ValueError(
                                f"corrupt stream: checksum mismatch in column {g}"
                            )
                        flagged.append(g)
                        col_vals = [0] * self.column_size
                        comp = []
                # Compensation applies only on column completion; entries
                # whose index exceeds the column (corruption) are ignored.
                for idx, val in comp:
                    if idx < self.column_size:
                        col_vals[idx] = val
                out.extend(col_vals)
        except EOFError:
            if strict:
                raise ValueError(
                    f"corrupt stream: exhausted after {reader.bits_read} of "
                    f"{encoded.bits} bits"
                ) from None
            if not self.checksum:
                # Without checksums the hardware unit keeps whatever compact
                # values it managed to shift in before the stream ran dry
                # (uncompensated); with them the partial column is
                # unverifiable, so it zero-fills.
                out.extend(col_vals)
            exhausted_at = len(out) // self.column_size
        if strict and reader.bits_read != encoded.bits:
            raise ValueError(
                f"decoded {reader.bits_read} bits, expected {encoded.bits}"
            )
        if self.checksum:
            # Same desync rule as the activation streams: exhaustion or an
            # end misalignment after a checksum failure means later columns
            # decoded from the wrong offsets — flag the whole tail.
            if exhausted_at is not None:
                flagged.extend(range(exhausted_at, columns))
            desynced = exhausted_at is not None or (
                bool(flagged) and reader.bits_read != encoded.bits
            )
            if desynced and flagged:
                flagged = list(range(flagged[0], columns))
        if len(out) < encoded.values:
            out.extend([0] * (encoded.values - len(out)))
        return np.array(out[: encoded.values], dtype=np.int64), tuple(flagged)

    def _decode_flagged_vectorized(
        self,
        encoded: Encoded,
        strict: bool,
        suspect_bits: "Sequence[tuple[int, int]]",
    ) -> "tuple[np.ndarray, tuple[int, ...]]":
        """Whole-array bit-plane path, byte-identical to the reference."""
        columns = -(-encoded.values // self.column_size)
        bitarr = np.unpackbits(np.frombuffer(encoded.data, dtype=np.uint8))
        phys = bitarr.size
        head = self._head_bits

        def rd(o: int, w: int) -> int:
            return int(bitarr[o : o + w] @ _bit_weights(w))

        # Sequential O(columns) header walk: spans are data-dependent
        # (run width and compensation count), values are not.
        offs = np.empty(columns, dtype=np.int64)
        runs = np.empty(columns, dtype=np.int64)
        ms = np.empty(columns, dtype=np.int64)
        complete = 0
        eof_bits_read: "Optional[int]" = None
        partial: "Optional[tuple[int, int, int]]" = None  # (pstart, compact, done)
        o = 0
        for _g in range(columns):
            if o + self._run_bits > phys:
                eof_bits_read = o
                break
            run = rd(o, self._run_bits) + 1
            if o + head > phys:
                eof_bits_read = o + self._run_bits
                break
            m = rd(o + self._run_bits, self._count_bits)
            compact = self.bits - run + 1
            estart = o + head
            pstart = estart + m * self._entry_bits
            pend = pstart + self.column_size * compact
            if pstart > phys:
                avail = phys - estart
                full_e = avail // self._entry_bits
                rem = avail % self._entry_bits
                eof_bits_read = estart + full_e * self._entry_bits
                if rem >= self._index_bits:
                    eof_bits_read += self._index_bits
                break
            if pend > phys:
                done = (phys - pstart) // compact
                eof_bits_read = pstart + done * compact
                partial = (pstart, compact, done)
                break
            if self.checksum and pend + CHECKSUM_BITS > phys:
                eof_bits_read = pend
                break
            offs[complete] = o
            runs[complete] = run
            ms[complete] = m
            o = pend + (CHECKSUM_BITS if self.checksum else 0)
            complete += 1
        bits_read = o if eof_bits_read is None else eof_bits_read

        out = np.zeros((columns, self.column_size), dtype=np.int64)
        rejected = np.zeros(columns, dtype=bool)
        offs_c = offs[:complete]
        runs_c = runs[:complete]
        ms_c = ms[:complete]
        estarts = offs_c + head
        pstarts = estarts + ms_c * self._entry_bits
        for r in (map(int, np.unique(runs_c)) if complete else ()):
            sel = np.flatnonzero(runs_c == r)
            compact = self.bits - r + 1
            span = self.column_size * compact
            weights = _bit_weights(compact)
            rel = np.arange(span, dtype=np.int64)
            for chunk in _chunked(sel, span):
                pos = pstarts[chunk][:, None] + rel
                planes = bitarr[pos.reshape(-1)].reshape(
                    len(chunk), self.column_size, compact
                )
                raw = planes.astype(np.int64) @ weights
                out[chunk] = bitplane._from_twos_complement_array(raw, compact)

        if self.checksum and complete:
            span_nocrc = head + ms_c * self._entry_bits + (
                self.bits - runs_c + 1
            ) * self.column_size
            cweights = _bit_weights(CHECKSUM_BITS)
            for s in map(int, np.unique(span_nocrc)):
                sel = np.flatnonzero(span_nocrc == s)
                contrib = crc8_contrib(s)
                for chunk in _chunked(sel, s):
                    pos = offs_c[chunk][:, None] + np.arange(s, dtype=np.int64)
                    msg = bitarr[pos.reshape(-1)].reshape(len(chunk), s)
                    calc = np.bitwise_xor.reduce(msg * contrib, axis=1)
                    cpos = (offs_c[chunk] + s)[:, None] + np.arange(
                        CHECKSUM_BITS, dtype=np.int64
                    )
                    stored = bitarr[cpos.reshape(-1)].reshape(len(chunk), CHECKSUM_BITS)
                    stored = stored.astype(np.int64) @ cweights
                    rejected[chunk] |= stored != calc
            if suspect_bits:
                span_end = offs_c + span_nocrc + CHECKSUM_BITS
                known_bad = np.zeros(complete, dtype=bool)
                for lo, hi in suspect_bits:
                    known_bad |= (offs_c < hi) & (lo < span_end)
                rejected[:complete] |= known_bad

        if strict:
            if self.checksum and rejected.any():
                g = int(np.flatnonzero(rejected)[0])
                raise ValueError(f"corrupt stream: checksum mismatch in column {g}")
            if eof_bits_read is not None:
                raise ValueError(
                    f"corrupt stream: exhausted after {bits_read} of "
                    f"{encoded.bits} bits"
                )
            if bits_read != encoded.bits:
                raise ValueError(
                    f"decoded {bits_read} bits, expected {encoded.bits}"
                )

        bad = np.flatnonzero(rejected)
        out[bad] = 0
        # Compensation entries of complete, unrejected columns; duplicate
        # or out-of-range indices (corruption) resolve exactly as the
        # reference's in-order scan: last in-range entry wins.
        live = np.flatnonzero((ms_c > 0) & ~rejected[:complete])
        out_flat = out.reshape(-1)
        for mval in (map(int, np.unique(ms_c[live])) if live.size else ()):
            sel = live[ms_c[live] == mval]
            pos = estarts[sel][:, None] + np.arange(
                mval * self._entry_bits, dtype=np.int64
            )
            ent = bitarr[pos.reshape(-1)].reshape(len(sel), mval, self._entry_bits)
            ent = ent.astype(np.int64)
            idx = ent[:, :, : self._index_bits] @ _bit_weights(self._index_bits)
            val = bitplane._from_twos_complement_array(
                ent[:, :, self._index_bits :] @ _bit_weights(self.bits), self.bits
            )
            tcol = np.repeat(sel, mval)
            tidx = idx.reshape(-1)
            tval = val.reshape(-1)
            valid = tidx < self.column_size
            t = tcol[valid] * self.column_size + tidx[valid]
            v = tval[valid]
            rev = t[::-1]
            uniq, first = np.unique(rev, return_index=True)
            out_flat[uniq] = v[::-1][first]

        flagged: "list[int]" = [int(g) for g in bad]
        if self.checksum:
            if eof_bits_read is not None:
                flagged.extend(range(complete, columns))
            desynced = eof_bits_read is not None or (
                bool(flagged) and bits_read != encoded.bits
            )
            if desynced and flagged:
                flagged = list(range(flagged[0], columns))
        elif partial is not None:
            pstart, compact, done = partial
            if done:
                weights = _bit_weights(compact)
                pos = (
                    pstart
                    + np.arange(done, dtype=np.int64)[:, None] * compact
                    + np.arange(compact, dtype=np.int64)
                )
                raw = bitarr[pos.reshape(-1)].reshape(done, compact).astype(np.int64)
                out[complete, :done] = bitplane._from_twos_complement_array(
                    raw @ weights, compact
                )
        return out.reshape(-1)[: encoded.values].copy(), tuple(flagged)
