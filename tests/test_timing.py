"""Tests for the instrumentation layer (timers, counters, report)."""

from __future__ import annotations

import time

import pytest

from repro.utils import timing


@pytest.fixture(autouse=True)
def _clean_registry():
    timing.reset()
    yield
    timing.reset()


class TestTimers:
    def test_accumulates_calls_and_time(self):
        for _ in range(3):
            with timing.timed("work"):
                time.sleep(0.001)
        stats = timing.timer_stats()
        assert stats["work"].calls == 3
        assert stats["work"].total_s >= 0.003
        assert stats["work"].mean_s == pytest.approx(stats["work"].total_s / 3)

    def test_nested_paths(self):
        with timing.timed("outer"):
            with timing.timed("inner"):
                pass
        stats = timing.timer_stats()
        assert "outer" in stats
        assert "outer/inner" in stats
        assert "inner" not in stats

    def test_exception_still_recorded(self):
        with pytest.raises(ValueError):
            with timing.timed("boom"):
                raise ValueError()
        assert timing.timer_stats()["boom"].calls == 1
        # the nesting stack must unwind so later timers get clean paths
        with timing.timed("after"):
            pass
        assert "after" in timing.timer_stats()


class TestCounters:
    def test_count_accumulates(self):
        timing.count("cache.hit")
        timing.count("cache.hit", 4)
        assert timing.counter_values()["cache.hit"] == 5

    def test_reset_clears_everything(self):
        timing.count("c")
        with timing.timed("t"):
            pass
        timing.reset()
        assert timing.counter_values() == {}
        assert timing.timer_stats() == {}


class TestReport:
    def test_report_names_all_entries(self):
        with timing.timed("alpha"):
            pass
        timing.count("beta", 2)
        text = timing.report()
        assert "alpha" in text
        assert "beta" in text
        assert "2" in text

    def test_empty_report_is_valid(self):
        assert "no timers" in timing.report()

    def test_profiling_enabled_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert not timing.profiling_enabled()
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert timing.profiling_enabled()
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not timing.profiling_enabled()


class TestStreamingHistogram:
    def test_validation(self):
        with pytest.raises(ValueError, match="bins"):
            timing.StreamingHistogram(0.0, 1.0, 0)
        with pytest.raises(ValueError, match="hi > lo"):
            timing.StreamingHistogram(1.0, 1.0, 4)
        with pytest.raises(ValueError, match="log"):
            timing.StreamingHistogram(0.0, 1.0, 4, log=True)
        with pytest.raises(ValueError, match="percentile"):
            timing.StreamingHistogram(0.0, 1.0, 4).percentile(101)
        with pytest.raises(ValueError, match="weight"):
            timing.StreamingHistogram(0.0, 1.0, 4).record(0.5, weight=-1)

    def test_counts_mean_minmax(self):
        hist = timing.StreamingHistogram(0.0, 10.0, 10)
        hist.record_many([1.5, 2.5, 2.6, 9.1])
        assert hist.n == 4
        assert hist.counts[1] == 1 and hist.counts[2] == 2 and hist.counts[9] == 1
        assert hist.mean == pytest.approx((1.5 + 2.5 + 2.6 + 9.1) / 4)
        assert hist.vmin == 1.5 and hist.vmax == 9.1

    def test_out_of_range_clamps_into_end_bins(self):
        hist = timing.StreamingHistogram(0.0, 1.0, 4)
        hist.record(-5.0)
        hist.record(42.0)
        assert hist.counts[0] == 1 and hist.counts[-1] == 1
        # ...but min/max stay exact.
        assert hist.vmin == -5.0 and hist.vmax == 42.0

    def test_percentiles_within_one_bin_of_exact(self):
        import numpy as np

        rng = np.random.default_rng(7)
        samples = rng.uniform(0.0, 100.0, size=2000)
        hist = timing.StreamingHistogram(0.0, 100.0, 200)
        hist.record_many(samples)
        bin_width = 0.5
        for q in (50, 95, 99):
            exact = float(np.percentile(samples, q))
            assert abs(hist.percentile(q) - exact) <= 2 * bin_width

    def test_percentile_clamped_to_observed_extremes(self):
        hist = timing.StreamingHistogram(0.0, 100.0, 10)
        hist.record(33.0)
        # A single sample: every percentile is that sample, not a bin edge.
        assert hist.percentile(0) == 33.0
        assert hist.percentile(50) == 33.0
        assert hist.percentile(100) == 33.0

    def test_empty_summary_is_nan(self):
        summary = timing.StreamingHistogram(0.0, 1.0, 4).summary()
        assert summary["count"] == 0
        for key in ("mean", "min", "max", "p50", "p95", "p99"):
            assert summary[key] != summary[key]  # NaN

    def test_merge_equals_single_stream(self):
        import numpy as np

        rng = np.random.default_rng(11)
        samples = rng.exponential(5.0, size=1000)
        whole = timing.StreamingHistogram(1e-3, 1e3, 64, log=True)
        whole.record_many(samples)
        part_a = timing.StreamingHistogram(1e-3, 1e3, 64, log=True)
        part_b = timing.StreamingHistogram(1e-3, 1e3, 64, log=True)
        part_a.record_many(samples[:400])
        part_b.record_many(samples[400:])
        merged = part_a.merge(part_b)
        assert merged is part_a
        assert merged.counts == whole.counts
        assert merged.n == whole.n
        # Percentiles depend only on counts/extremes: exactly equal.
        for q in (50, 95, 99):
            assert merged.percentile(q) == whole.percentile(q)
        # The mean's float sum is association-sensitive: equal to 1 ulp.
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)

    def test_record_values_matches_record_loop(self):
        import numpy as np

        rng = np.random.default_rng(23)
        samples = rng.exponential(0.2, size=2000)
        # Include exact edge values: searchsorted side="right" must agree
        # with bisect_right at bin boundaries.
        looped = timing.StreamingHistogram(1e-4, 1e3, 288, log=True)
        samples = np.concatenate([samples, np.array(looped._edges[:5])])
        looped = timing.StreamingHistogram(1e-4, 1e3, 288, log=True)
        vectorized = timing.StreamingHistogram(1e-4, 1e3, 288, log=True)
        for v in samples:
            looped.record(float(v))
        vectorized.record_values(samples)
        assert vectorized.counts == looped.counts
        assert vectorized.n == looped.n
        assert vectorized.vmin == looped.vmin
        assert vectorized.vmax == looped.vmax
        for q in (50, 95, 99):
            assert vectorized.percentile(q) == looped.percentile(q)
        assert vectorized.mean == pytest.approx(looped.mean, rel=1e-12)

    def test_record_values_empty_and_shape(self):
        import numpy as np

        hist = timing.StreamingHistogram(0.0, 10.0, 10)
        hist.record_values(np.array([]))
        assert hist.n == 0
        hist.record_values(np.array([[1.0, 2.0], [3.0, 4.0]]))  # reshaped to 1-D
        assert hist.n == 4

    def test_merge_rejects_different_binning(self):
        a = timing.StreamingHistogram(0.0, 1.0, 4)
        b = timing.StreamingHistogram(0.0, 1.0, 8)
        with pytest.raises(ValueError, match="different bins"):
            a.merge(b)

    def test_log_bins_resolve_small_values(self):
        hist = timing.StreamingHistogram(1e-4, 1e2, 120, log=True)
        hist.record_many([1e-3] * 99 + [10.0])
        assert hist.percentile(50) == pytest.approx(1e-3, rel=0.15)
        assert hist.percentile(99) == pytest.approx(1e-3, rel=0.15)
        assert hist.percentile(100) == 10.0

    def test_weighted_record(self):
        hist = timing.StreamingHistogram(0.0, 10.0, 10)
        hist.record(2.0, weight=3)
        hist.record(8.0)
        assert hist.n == 4
        assert hist.mean == pytest.approx((2.0 * 3 + 8.0) / 4)
        hist.record(5.0, weight=0)  # no-op
        assert hist.n == 4
