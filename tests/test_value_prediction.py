"""Value-prediction engine: degenerate cases pin the speculative model
to the PRA baseline it wraps — disabled is byte-identical, an all-miss
trace pays the full recovery toll, and the tradeoff is monotone."""

import numpy as np
import pytest

from repro.arch.predict import ValuePredictionModel
from repro.arch.sim import model_for
from repro.arch.term_maps import vp_term_map
from repro.nn.trace import ConvLayerTrace


def _layer(imap, kernel=3, stride=1, padding=0, relu=True):
    """A trace layer around a constructed imap; omap shape follows the
    conv geometry (its values are irrelevant to term pricing)."""
    c, h, w = imap.shape
    oh = (h + 2 * padding - kernel) // stride + 1
    ow = (w + 2 * padding - kernel) // stride + 1
    return ConvLayerTrace(
        name="probe",
        index=0,
        imap=np.asarray(imap, dtype=np.int64),
        imap_scale=0,
        omap=np.zeros((3, oh, ow), dtype=np.int64),
        omap_scale=0,
        out_channels=3,
        kernel=kernel,
        stride=stride,
        padding=padding,
        dilation=1,
        relu=relu,
    )


@pytest.fixture(scope="module")
def ramp_layer():
    """Strictly increasing along x with step 37 and *zero padding*, so
    every spatial delta exceeds any small threshold: an all-miss trace.
    (With padding > 0 the zero borders would produce trivial 0->0 hits.)"""
    imap = np.cumsum(np.full((2, 6, 6), 37, dtype=np.int64), axis=2)
    return _layer(imap, padding=0)


@pytest.fixture(scope="module")
def flat_layer():
    """Constant imap: every predictable position is a perfect hit."""
    return _layer(np.full((2, 6, 6), 21, dtype=np.int64), padding=0)


class TestDisabledIsPRA:
    def test_byte_identical_layer_cycles(self, dncnn_trace):
        vp = ValuePredictionModel(enabled=False)
        pra = model_for("PRA")
        for layer in dncnn_trace:
            assert vp.layer_cycles(layer) == pra.layer_cycles(layer)

    def test_disabled_stats_are_inert(self, ramp_layer):
        vp = ValuePredictionModel(enabled=False)
        stats = vp.prediction_stats(ramp_layer)
        assert stats == {"hit_fraction": 0.0, "mse": 0.0}


class TestAllMiss:
    def test_every_prediction_misses(self, ramp_layer):
        vp = ValuePredictionModel(threshold=0, recovery_cycles=2)
        assert vp.prediction_stats(ramp_layer)["hit_fraction"] == 0.0

    def test_misses_cost_at_least_the_baseline(self, ramp_layer):
        """100% misprediction: every predicted position pays its raw
        terms plus the recovery bubble, so VP can only be slower."""
        vp = ValuePredictionModel(threshold=0, recovery_cycles=2)
        pra = model_for("PRA")
        assert vp.layer_cycles(ramp_layer).cycles >= pra.layer_cycles(ramp_layer).cycles

    def test_zero_recovery_matches_baseline_on_misses(self, ramp_layer):
        """With a free recovery bubble, an all-miss VP degenerates to PRA."""
        vp = ValuePredictionModel(threshold=0, recovery_cycles=0)
        pra = model_for("PRA")
        assert vp.layer_cycles(ramp_layer).cycles == pra.layer_cycles(ramp_layer).cycles


class TestAllHit:
    def test_flat_map_hits_everywhere(self, flat_layer):
        vp = ValuePredictionModel(threshold=0, recovery_cycles=2)
        stats = vp.prediction_stats(flat_layer)
        assert stats["hit_fraction"] == 1.0
        assert stats["mse"] == 0.0

    def test_hits_never_cost_more_than_baseline(self, flat_layer):
        vp = ValuePredictionModel(threshold=0, recovery_cycles=2)
        pra = model_for("PRA")
        assert vp.layer_cycles(flat_layer).cycles <= pra.layer_cycles(flat_layer).cycles


class TestMonotoneTradeoff:
    def test_hits_and_cycles_monotone_in_threshold(self, dncnn_trace):
        layer = dncnn_trace.layers[1]
        hits, cycles = [], []
        for threshold in (0, 2, 8, 32, 1 << 20):
            vp = ValuePredictionModel(threshold=threshold, recovery_cycles=2)
            hits.append(vp.prediction_stats(layer)["hit_fraction"])
            cycles.append(vp.layer_cycles(layer).cycles)
        assert hits == sorted(hits)
        assert cycles == sorted(cycles, reverse=True)
        # A huge threshold predicts every non-head position.
        assert hits[-1] == 1.0

    def test_term_map_memoized(self, ramp_layer):
        a = vp_term_map(ramp_layer, threshold=3, recovery_cycles=2)
        b = vp_term_map(ramp_layer, threshold=3, recovery_cycles=2)
        assert a is b
        c = vp_term_map(ramp_layer, threshold=4, recovery_cycles=2)
        assert c is not a


class TestRegistration:
    def test_model_for_vp(self):
        model = model_for("VP")
        assert isinstance(model, ValuePredictionModel)
        assert model.name == "VP"

    def test_unknown_engine_lists_vp(self):
        with pytest.raises(ValueError, match="VP"):
            model_for("TPU")

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            ValuePredictionModel(threshold=-1)
        with pytest.raises(ValueError, match="recovery_cycles"):
            ValuePredictionModel(recovery_cycles=-2)
        with pytest.raises(ValueError, match="axis"):
            ValuePredictionModel(axis="z")
