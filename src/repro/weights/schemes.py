"""Weight storage schemes, composable with the activation schemes.

Mirrors ``repro.compression.schemes``' registry shape on the weight
axis: ``Raw16W`` is the dense 16-bit baseline every existing ladder
already prices (``LayerShape.weight_bytes``), ``Raw8W`` the calibrated
INT8 layout, and ``MSR4W`` the MSR-compacted INT8 stream.  Pricing is
exact — ``MSR4W`` accounts via the codec's per-column layout, not a
ratio estimate — so the Fig 5/Fig 14 composed ladders and the serve
weight-stream knob all agree to the bit.
"""

from __future__ import annotations

import numpy as np

from repro.weights.msr import MSRCodec
from repro.weights.quant import quantize_weights_int8

__all__ = [
    "WEIGHT_SCHEMES",
    "WeightScheme",
    "network_weight_bits",
    "network_weight_bytes",
    "weight_scheme",
]


class WeightScheme:
    """Prices a layer's quantized weight stream in storage bits."""

    name = "weight-scheme"

    def encoded_bits(self, int_weights: np.ndarray) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}({self.name!r})"


class RawWeights(WeightScheme):
    """Uncompressed fixed-width storage (``Raw16W`` dense baseline, ``Raw8W``)."""

    def __init__(self, width: int):
        if width < 2:
            raise ValueError(f"width must be >= 2, got {width}")
        self.width = int(width)
        self.name = f"Raw{width}W"

    def encoded_bits(self, int_weights: np.ndarray) -> int:
        return int(np.asarray(int_weights).size) * self.width


class MSRWeights(WeightScheme):
    """MSR-compacted INT8 storage (the ``MSR4W`` design point)."""

    name = "MSR4W"

    def __init__(self, bits: int = 8, max_msr: int = 4, column_size: int = 256):
        self.codec = MSRCodec(bits=bits, max_msr=max_msr, column_size=column_size)

    def encoded_bits(self, int_weights: np.ndarray) -> int:
        return self.codec.encoded_bits(np.asarray(int_weights, dtype=np.int64))


WEIGHT_SCHEMES: "tuple[WeightScheme, ...]" = (
    RawWeights(16),
    RawWeights(8),
    MSRWeights(),
)


def weight_scheme(name: str) -> WeightScheme:
    """Look up a weight scheme by name (``Raw16W``, ``Raw8W``, ``MSR4W``)."""
    for scheme in WEIGHT_SCHEMES:
        if scheme.name == name:
            return scheme
    available = ", ".join(sorted(s.name for s in WEIGHT_SCHEMES))
    raise KeyError(f"unknown weight scheme {name!r}; available: {available}")


def network_weight_bits(network, scheme_name: str) -> "dict[str, int]":
    """Per-conv-layer encoded weight bits under a named scheme.

    ``Raw16W`` totals exactly match the dense ``LayerShape.weight_bytes``
    baseline the activation-only ladders already charge.
    """
    scheme = weight_scheme(scheme_name)
    out: "dict[str, int]" = {}
    for layer in network.conv_layers:
        int_w, _scale = quantize_weights_int8(layer.weights)
        out[layer.name] = scheme.encoded_bits(int_w)
    return out


def network_weight_bytes(network, scheme_name: str) -> float:
    """Total network weight storage in bytes under a named scheme."""
    return sum(network_weight_bits(network, scheme_name).values()) / 8.0
