"""Storage-fault chaos: protection ladders priced inside the serve path.

The serving simulation never materializes per-session activation arrays
— state is priced, not stored — so injecting storage faults per request
would be both impossibly slow and dishonest (there is nothing real to
corrupt).  Instead this module runs the *real* protection machinery once
per ladder point, on a real quantized map, with real seeded fault
injection, and distills the result into serve-path probabilities:

1. :func:`price_ladder` stores a seeded calibration map under the
   ladder's :class:`~repro.protect.policy.ProtectionPolicy`
   (:func:`repro.protect.store_protected`), corrupts its stored form
   with a :mod:`repro.faults` model at the requested per-bit rate, runs
   the full recovery ladder (:func:`repro.protect.read_protected`), and
   classifies each trial with serving semantics:

   - ``clean`` — nothing flagged, output exact;
   - ``corrected`` — ECC repaired everything, output exact, no flags;
   - ``detected`` — the ladder raised *any* flag: a production server
     cannot trust the state and must re-anchor (pay a cold frame);
   - ``silent`` — output wrong and **no** flag raised: the server would
     have served corrupt output without knowing.  This is the SLO
     number a ladder is judged by.

2. :class:`StorageChaos` replays those probabilities per warm request,
   with the outcome drawn from a hash of ``(fault_seed, session_id,
   frame_index)`` — keyed by content, never by processing order, so a
   chaos run is byte-identical across worker counts and shard layouts.

The ladder's storage overhead also rides along: protected state is
bigger, so a protected store fits fewer resident sessions under the same
byte cap — the capacity cost of protection is charged even at fault
rate zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cache import store as cache_store
from repro.data.video import synthesize_clip
from repro.faults.inject import WORD_BITS, inject_encoded, inject_words
from repro.faults.models import FaultModel, fault_model
from repro.protect import codeword_bits, read_protected, store_protected
from repro.protect.policy import ProtectionPolicy, protection_policy
from repro.protect.stream import ProtectedMap, RecoveryReport
from repro.serve.chaos.schedule import BurstWindow
from repro.utils import timing
from repro.utils.rng import DEFAULT_SEED, derive_seed, rng_for

__all__ = [
    "SERVE_LADDERS",
    "serve_ladder",
    "LadderPricing",
    "price_ladder",
    "corrupt_protected_read",
    "classify_trial",
    "StorageChaos",
]

#: Serve-path protection ladders.  These mirror the stock policies of
#: :mod:`repro.protect.policy` with one substitution: the stored state is
#: a delta stream with no anchor words, so the "ecc" rung protects the
#: packed stream (``stream_ecc``) rather than raw words (``word_ecc``,
#: which would protect nothing here).
SERVE_LADDERS: "dict[str, ProtectionPolicy]" = {
    "none": protection_policy("none"),
    "ecc": ProtectionPolicy("serve-ecc", stream_ecc=True),
    "checksum": protection_policy("checksum"),
    "keyframe": protection_policy("keyframe"),
    "full": protection_policy("full"),
}

#: Calibration-map crop: big enough for a realistic delta distribution,
#: small enough that pricing a ladder point stays cheap (and cached).
PRICING_CROP = 24

#: Default injection trials behind each pricing point.
PRICING_TRIALS = 64


def serve_ladder(name: str) -> ProtectionPolicy:
    """Look up a serve-path ladder by name."""
    try:
        return SERVE_LADDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown serve ladder {name!r}; available: {sorted(SERVE_LADDERS)}"
        ) from None


@dataclass(frozen=True)
class LadderPricing:
    """Measured serve-path behaviour of one (ladder, model, rate) point."""

    ladder: str
    fault_model: str
    rate: float
    trials: int
    p_clean: float
    p_corrected: float
    p_detected: float
    p_silent: float
    #: Protected stored bits / unprotected stored bits of the same map.
    storage_overhead: float

    def __post_init__(self) -> None:
        total = self.p_clean + self.p_corrected + self.p_detected + self.p_silent
        if self.trials and abs(total - 1.0) > 1e-9:
            raise ValueError(f"outcome probabilities must sum to 1, got {total}")


def _calibration_map(seed: int, crop: int) -> np.ndarray:
    """The quantized activation-like map all pricing trials corrupt."""
    frame = synthesize_clip(2, crop, crop, pan_px=1, seed=seed)[-1]
    return np.round(frame * 255.0).astype(np.int64)


def corrupt_protected_read(
    pmap: ProtectedMap,
    rate: float,
    model: FaultModel,
    rng: np.random.Generator,
) -> "tuple[np.ndarray, RecoveryReport, int]":
    """Inject faults into one stored map and run the recovery ladder.

    Returns ``(observed, report, faults)``.  The injection surface is the
    map's actual stored form — anchor words at their stored width, the
    packed stream (or its SECDED codewords under ``stream_ecc``) — the
    same surfaces :mod:`repro.faults.campaign` attacks.
    """
    counter = {"faults": 0}

    def anchor_hook(anchors: np.ndarray) -> np.ndarray:
        corrupted, n = inject_words(
            anchors,
            rate,
            model,
            rng,
            width=pmap.anchor_width,
            signed=pmap.signed and not pmap.policy.word_ecc,
        )
        counter["faults"] += n
        return corrupted

    if pmap.policy.stream_ecc:

        def stream_hook(codes):
            corrupted, n = inject_words(
                codes, rate, model, rng, width=codeword_bits(WORD_BITS)
            )
            counter["faults"] += n
            return corrupted

    else:

        def stream_hook(encoded):
            corrupted, n = inject_encoded(encoded, rate, model, rng)
            counter["faults"] += n
            return corrupted

    observed, report = read_protected(
        pmap, anchor_hook=anchor_hook, stream_hook=stream_hook
    )
    return observed, report, counter["faults"]


def classify_trial(
    truth: np.ndarray, observed: np.ndarray, report: RecoveryReport
) -> str:
    """Serving-semantics outcome of one corrupted read.

    Any flag — an ECC detection, a zeroed checksum group, anything in the
    suspect mask — means a server re-anchors rather than trusting the
    state, whether or not the output happened to survive.  Only an exact,
    flag-free read serves warm; a wrong, flag-free read is silent.
    """
    flagged = (
        report.detected > 0
        or report.zeroed_groups > 0
        or bool(report.flagged_mask.any())
    )
    if flagged:
        return "detected"
    if bool(np.any(observed != np.asarray(truth, dtype=np.int64))):
        return "silent"
    if report.corrected > 0:
        return "corrected"
    return "clean"


def price_ladder(
    ladder: str,
    fault_model_name: str,
    rate: float,
    trials: int = PRICING_TRIALS,
    seed: int = DEFAULT_SEED,
    crop: int = PRICING_CROP,
) -> LadderPricing:
    """Measure one ladder's serve-path probabilities at one fault rate.

    Pure function of its arguments (map, faults, and recovery are all
    seeded), so the result is disk-cached like the service times; the
    probabilities are byte-identical on both codec backends because the
    protection stack itself is.
    """
    policy = serve_ladder(ladder)
    fault_model(fault_model_name)  # fail fast on unknown names
    if rate < 0.0:
        raise ValueError(f"rate must be >= 0, got {rate}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    return cache_store.fetch_or_compute(
        "chaos_ladder",
        (ladder, fault_model_name, float(rate), trials, seed, crop),
        lambda: _price(ladder, policy, fault_model_name, float(rate), trials, seed, crop),
    )


def _price(
    ladder: str,
    policy: ProtectionPolicy,
    fault_model_name: str,
    rate: float,
    trials: int,
    seed: int,
    crop: int,
) -> LadderPricing:
    truth = _calibration_map(seed, crop)
    with timing.timed("chaos.price_ladder"):
        pmap = store_protected(truth, policy)
        baseline = store_protected(truth, SERVE_LADDERS["none"]).stored_bits
        overhead = pmap.stored_bits / baseline if baseline else 1.0
        counts = {"clean": 0, "corrected": 0, "detected": 0, "silent": 0}
        if rate == 0.0:
            counts["clean"] = trials
        else:
            model = fault_model(fault_model_name)
            for trial in range(trials):
                rng = rng_for(seed, "chaos-ladder", ladder, fault_model_name, rate, trial)
                observed, report, _ = corrupt_protected_read(pmap, rate, model, rng)
                counts[classify_trial(truth, observed, report)] += 1
    return LadderPricing(
        ladder=ladder,
        fault_model=fault_model_name,
        rate=rate,
        trials=trials,
        p_clean=counts["clean"] / trials,
        p_corrected=counts["corrected"] / trials,
        p_detected=counts["detected"] / trials,
        p_silent=counts["silent"] / trials,
        storage_overhead=overhead,
    )


#: Normalizer mapping a 63-bit :func:`derive_seed` hash to [0, 1).
_U64 = float(1 << 63)


@dataclass(frozen=True)
class StorageChaos:
    """Per-request storage-fault outcomes for one chaos run.

    ``outcome`` is consulted once per warm-eligible request (the only
    reads that touch stored temporal state).  The draw hashes the request
    identity, so the same request gets the same outcome on any worker
    count, any shard layout, and any resume — the property every other
    deterministic subsystem here is built on.
    """

    seed: int
    base: LadderPricing
    #: Pricing at the burst-elevated fault rate (None = bursts do not
    #: raise the fault rate).
    burst: Optional[LadderPricing] = None
    bursts: "tuple[BurstWindow, ...]" = ()

    def pricing_at(self, t: float) -> LadderPricing:
        if self.burst is not None and any(
            w.start_s <= t < w.end_s for w in self.bursts
        ):
            return self.burst
        return self.base

    @property
    def overhead(self) -> float:
        """Per-session state inflation the ladder charges the byte cap."""
        return self.base.storage_overhead

    def outcome(self, session_id: int, frame_index: int, now: float) -> str:
        pricing = self.pricing_at(now)
        if pricing.rate <= 0.0:
            return "clean"
        u = derive_seed(self.seed, "chaos-storage", session_id, frame_index) / _U64
        if u < pricing.p_clean:
            return "clean"
        if u < pricing.p_clean + pricing.p_corrected:
            return "corrected"
        if u < pricing.p_clean + pricing.p_corrected + pricing.p_detected:
            return "detected"
        return "silent"
