"""Differential convolution (the paper's Eq 4), bit-exact.

Given an output row, direct convolution computes every output from raw
activation windows.  Differential convolution computes only the first
output of the row directly; every subsequent output is the previous output
plus the inner product of the weights with the *element-wise delta* of the
two adjacent windows:

    o(n, y, x+1) = o(n, y, x) + <w_n, Delta>                      (Eq 4)
    Delta(k, j, i) = a(k, j + yS, i + (x+1)S) - a(k, j + yS, i + xS)

Because multiplication distributes over the subtraction, the result is
*exactly* equal to direct convolution — there is no approximation anywhere
in Diffy.  The tests assert this equality on random integer tensors.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.nn.functional import conv2d_int, im2col
from repro.core.deltas import reconstruct_from_deltas, spatial_deltas
from repro.utils.validation import check_axis, check_positive

#: Signature of a delta-stream hook: receives the decoded delta array and
#: returns a (possibly corrupted) copy.  Used by :mod:`repro.faults` to
#: model bit errors in deltas just before differential reconstruction.
DeltaHook = Callable[[np.ndarray], np.ndarray]


def differential_conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
    axis: str = "x",
    delta_hook: Optional[DeltaHook] = None,
) -> np.ndarray:
    """Convolve using differential windows; exact equal to direct conv.

    The computation mirrors the hardware dataflow (Section III-D): the
    leftmost output of each row is an ordinary inner product on raw values;
    every other output's *differential component* is an inner product on
    window deltas; a cascaded prefix sum then reconstructs the outputs.

    Parameters
    ----------
    x:
        Integer (C, H, W) input feature map.
    weights:
        Integer (K, C, Hf, Wf) filter bank.
    axis:
        Differential chain direction: ``"x"`` (along rows, the paper's
        choice) or ``"y"`` (along columns).
    delta_hook:
        Optional transform applied to the delta stream before the
        differential inner products — the fault-injection campaign's
        "delta" site.  The head (raw) windows of each chain are computed
        from raw activations and are unaffected; with the default ``None``
        the result is exactly direct convolution.
    """
    check_axis("axis", axis)
    arr = np.asarray(x, dtype=np.int64)
    w = np.asarray(weights, dtype=np.int64)

    if padding:
        arr = np.pad(arr, ((0, 0), (padding, padding), (padding, padding)))

    # Window deltas are the spatial deltas of the (padded) imap at the
    # window stride: adjacent windows differ elementwise by exactly these.
    deltas = spatial_deltas(arr, axis=axis, stride=stride)
    if delta_hook is not None:
        deltas = np.asarray(delta_hook(deltas), dtype=np.int64)
        if deltas.shape != arr.shape:
            raise ValueError(
                f"delta_hook changed the delta shape: {deltas.shape} != {arr.shape}"
            )

    # Differential components for every window: inner products on deltas.
    diff = conv2d_int(deltas, w, None, stride=stride, padding=0, dilation=dilation)

    # The first window along the chain axis must be computed directly from
    # raw values.  spatial_deltas keeps raw values in the first `stride`
    # positions, and the first window only covers positions < effective
    # kernel extent... which may include *delta* positions when the kernel
    # is wider than the stride.  So recompute the head column/row directly.
    chain_ax = 2 if axis == "x" else 1
    head_idx = [slice(None)] * 3
    head_idx[chain_ax] = slice(0, 1)
    eff = ((w.shape[2] - 1) * dilation + 1, (w.shape[3] - 1) * dilation + 1)
    if axis == "x":
        head_input = arr[:, :, : eff[1]]
    else:
        head_input = arr[:, : eff[0], :]
    head = conv2d_int(head_input, w, None, stride=stride, padding=0, dilation=dilation)
    diff[tuple(head_idx)] = head[tuple(head_idx)]

    # Cascaded reconstruction (the DR engines): prefix sum along the chain.
    out = np.cumsum(diff, axis=chain_ax)

    if bias is not None:
        out = out + np.asarray(bias, dtype=np.int64).reshape(-1, 1, 1)
    return out


class DifferentialConv2d:
    """A reusable differential-convolution operator with work accounting.

    Wraps :func:`differential_conv2d` and reports the term-level work split
    the accelerator models consume: how many windows were computed raw vs
    differentially, and the reconstruction additions required.

    Parameters
    ----------
    weights, bias, stride, padding, dilation, axis:
        As in :func:`differential_conv2d`.
    """

    def __init__(
        self,
        weights: np.ndarray,
        bias: Optional[np.ndarray] = None,
        stride: int = 1,
        padding: int = 0,
        dilation: int = 1,
        axis: str = "x",
        delta_hook: Optional[DeltaHook] = None,
    ):
        check_axis("axis", axis)
        self.weights = np.asarray(weights, dtype=np.int64)
        self.bias = None if bias is None else np.asarray(bias, dtype=np.int64)
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        self.axis = axis
        self.delta_hook = delta_hook

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return differential_conv2d(
            x,
            self.weights,
            self.bias,
            self.stride,
            self.padding,
            self.dilation,
            self.axis,
            self.delta_hook,
        )

    def work_summary(self, x: np.ndarray) -> dict[str, int]:
        """Raw/differential window counts and reconstruction adds.

        ``reconstruction_adds`` is one addition per differentially computed
        output activation (Section III-D: "a single addition per output is
        all that is needed").
        """
        arr = np.asarray(x, dtype=np.int64)
        c, h, w_ = arr.shape
        eff_h = (self.weights.shape[2] - 1) * self.dilation + 1
        eff_w = (self.weights.shape[3] - 1) * self.dilation + 1
        ho = (h + 2 * self.padding - eff_h) // self.stride + 1
        wo = (w_ + 2 * self.padding - eff_w) // self.stride + 1
        if self.axis == "x":
            raw_windows = ho
        else:
            raw_windows = wo
        total = ho * wo
        k = self.weights.shape[0]
        return {
            "total_windows": total,
            "raw_windows": raw_windows,
            "differential_windows": total - raw_windows,
            "reconstruction_adds": (total - raw_windows) * k,
        }


def reconstruct_map(
    deltas: np.ndarray,
    axis: str = "x",
    stride: int = 1,
    delta_hook: Optional[DeltaHook] = None,
) -> np.ndarray:
    """Reconstruct a stored feature map from its decoded delta stream.

    This is what the per-SIP Differential Reconstruction engines do with a
    DeltaD16 map read back from the activation memory: a prefix sum along
    each chain recovers the raw values exactly.  ``delta_hook`` (applied to
    the decoded deltas *before* reconstruction) is the fault-injection
    campaign's "delta" site — an error in one delta is accumulated into
    every downstream value of its chain, which is precisely the
    error-amplification effect the campaign measures.
    """
    arr = np.asarray(deltas, dtype=np.int64)
    if delta_hook is not None:
        arr = np.asarray(delta_hook(arr), dtype=np.int64)
    return reconstruct_from_deltas(arr, axis=axis, stride=stride)


def keyframe_anchor_mask(
    n: int, interval: Optional[int], stride: int = 1
) -> np.ndarray:
    """Boolean mask of anchor positions along a chain axis of length ``n``.

    Positions whose chain index (``x // stride``) is a multiple of
    ``interval`` are anchors — stored raw instead of as deltas, so a
    reconstruction error cannot propagate past the next anchor.
    ``interval=None`` (the DeltaD16 endpoint) anchors only the chain
    heads; ``interval=1`` (the Raw16 endpoint) anchors everything.
    """
    if interval is not None and interval < 1:
        raise ValueError(f"interval must be >= 1 or None, got {interval}")
    check_positive("stride", stride)
    chain_index = np.arange(n) // stride
    if interval is None:
        return chain_index == 0
    return (chain_index % interval) == 0


def keyframe_deltas(
    fmap: np.ndarray,
    interval: Optional[int] = None,
    axis: str = "x",
    stride: int = 1,
) -> np.ndarray:
    """Spatial deltas with every ``interval``-th chain position kept raw.

    Identical to :func:`repro.core.deltas.spatial_deltas` except that
    anchor positions (see :func:`keyframe_anchor_mask`) hold the raw
    activation value rather than a difference — the keyframe mechanism of
    :mod:`repro.protect`, bounding worst-case error-run length to
    ``interval``.  ``interval=None`` reproduces plain spatial deltas
    exactly; ``interval=1`` reproduces the raw map exactly.
    """
    check_axis("axis", axis)
    arr = np.asarray(fmap, dtype=np.int64)
    deltas = spatial_deltas(arr, axis=axis, stride=stride)
    if interval is None:
        return deltas
    ax = arr.ndim - 1 if axis == "x" else arr.ndim - 2
    mask = keyframe_anchor_mask(arr.shape[ax], interval, stride)
    idx = [slice(None)] * arr.ndim
    idx[ax] = mask
    deltas[tuple(idx)] = arr[tuple(idx)]
    return deltas


def reconstruct_from_keyframes(
    deltas: np.ndarray,
    interval: Optional[int] = None,
    axis: str = "x",
    stride: int = 1,
) -> np.ndarray:
    """Exact inverse of :func:`keyframe_deltas`: segmented reconstruction.

    Each anchor restarts its chain's prefix sum, so the cascaded adders
    only ever accumulate at most ``interval`` consecutive deltas — which
    is precisely why a corrupted delta damages at most ``interval`` values
    instead of the rest of the row.
    """
    check_axis("axis", axis)
    arr = np.asarray(deltas, dtype=np.int64)
    if interval is None:
        return reconstruct_from_deltas(arr, axis=axis, stride=stride)
    if interval < 1:
        raise ValueError(f"interval must be >= 1 or None, got {interval}")
    check_positive("stride", stride)
    if arr.ndim < 2:
        raise ValueError(f"deltas must have >= 2 dims (H, W), got shape {arr.shape}")
    ax = arr.ndim - 1 if axis == "x" else arr.ndim - 2
    n = arr.shape[ax]
    out = arr.copy()
    if n == 0 or interval == 1:
        return out
    # Chains are the stride phases; segments are `interval` chain steps.
    for phase in range(min(stride, n)):
        chain = [slice(None)] * arr.ndim
        chain[ax] = slice(phase, None, stride)
        sub = out[tuple(chain)]
        m = sub.shape[ax]
        for seg_start in range(0, m, interval):
            seg = [slice(None)] * arr.ndim
            seg[ax] = slice(seg_start, min(seg_start + interval, m))
            sub[tuple(seg)] = np.cumsum(sub[tuple(seg)], axis=ax)
    return out


def windows_and_deltas(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
    axis: str = "x",
) -> tuple[np.ndarray, np.ndarray]:
    """Return (raw windows, delta windows) in im2col layout.

    Debug/analysis helper: materializes, for each output position, both the
    raw activation window and the differential window Diffy would process.
    Shapes are ``(Ho, Wo, C, Hf, Wf)``.
    """
    check_axis("axis", axis)
    arr = np.asarray(x, dtype=np.int64)
    if padding:
        arr = np.pad(arr, ((0, 0), (padding, padding), (padding, padding)))
    raw = im2col(arr, kernel, stride, 0, dilation)
    deltas = spatial_deltas(arr, axis=axis, stride=stride)
    dwin = im2col(deltas, kernel, stride, 0, dilation)
    return raw, dwin
