"""Fig 2: spatial-correlation heatmaps of DnCNN's conv_3 on "Barbara".

The paper shows (a) the raw imap, (b) the adjacent-along-X deltas peaking
only at edges, and (c) the per-activation effectual-term reduction, with
an average of 3.65 terms per activation vs 1.9 per delta (1.9x potential).
We regenerate the same three arrays on the synthetic Barbara stand-in and
report the caption statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.spatial import HeatmapData, heatmap_data
from repro.data.datasets import dataset
from repro.experiments.profiles import Profile, resolve_profile
from repro.models.inputs import adapt_input
from repro.models.registry import get_model_spec, prepare_model
from repro.utils.rng import DEFAULT_SEED


@dataclass(frozen=True)
class Fig2Result:
    """Heatmap arrays plus summary statistics for the traced layer."""

    model: str
    layer: str
    heatmaps: HeatmapData

    @property
    def edge_fraction_negative(self) -> float:
        """Fraction of pixels where deltas *cost* extra terms (edges)."""
        return float((self.heatmaps.term_reduction < 0).mean())


def run(
    model: str = "DnCNN",
    layer_name: str = "conv_3",
    crop: int = 128,
    seed: int = DEFAULT_SEED,
) -> Fig2Result:
    """Trace ``model`` on the Barbara stand-in and extract layer heatmaps."""
    spec = get_model_spec(model)
    net = prepare_model(model, seed)
    image = dataset("barbara").crop(0, crop, seed=seed)
    trace = net.trace(adapt_input(spec.input_adapter, image))
    layer = trace.layer_named(layer_name)
    return Fig2Result(model=model, layer=layer_name, heatmaps=heatmap_data(layer))


def compute(profile: Profile | None = None) -> Fig2Result:
    """Profile-scaled entry point for the golden-regression harness."""
    p = resolve_profile(profile)
    return run(
        model=p.pick_models(("DnCNN",))[0],
        crop=p.pick_crop(128),
        seed=p.seed,
    )


def format_result(result: Fig2Result) -> str:
    hm = result.heatmaps
    lines = [
        f"Fig 2: {result.model} {result.layer} on synthetic Barbara",
        f"  (a) raw |activation| heatmap   mean={hm.raw.mean():.1f}  max={hm.raw.max():.1f}",
        f"  (b) |delta| heatmap            mean={hm.delta.mean():.1f}  max={hm.delta.max():.1f}",
        f"  (c) term reduction             mean={hm.term_reduction.mean():.2f} terms/activation",
        f"  avg terms per activation = {hm.mean_terms_raw:.2f}  (paper: 3.65)",
        f"  avg terms per delta      = {hm.mean_terms_delta:.2f}  (paper: 1.9)",
        f"  potential work reduction = {hm.potential_work_reduction:.2f}x (paper: 1.9x)",
        f"  pixels where deltas cost extra terms (edges): "
        f"{result.edge_fraction_negative * 100:.1f}%",
    ]
    return "\n".join(lines)


def save_heatmaps(result: Fig2Result, path_prefix: str) -> list[str]:
    """Persist the three arrays as .npy files for external plotting."""
    paths = []
    for name, arr in (
        ("raw", result.heatmaps.raw),
        ("delta", result.heatmaps.delta),
        ("term_reduction", result.heatmaps.term_reduction),
    ):
        path = f"{path_prefix}_{name}.npy"
        np.save(path, arr)
        paths.append(path)
    return paths


def main() -> None:  # pragma: no cover - CLI entry
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
