"""Exact integer convolution and resampling primitives.

Integer convolutions here are *bit-exact* models of what VAA/PRA/Diffy
compute: 16-bit activations times 16-bit weights accumulated into a wide
accumulator.  The implementation lowers to ``float64`` matrix multiplies
for speed, which is exact as long as the accumulation stays below 2**53 —
asserted at call time (a 16x16-bit product is < 2**31, so up to 2**22
terms per output are safe; real layers have at most a few thousand).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

_EXACT_FLOAT_LIMIT = float(1 << 53)


def _check_chw(x: np.ndarray, name: str = "x") -> np.ndarray:
    arr = np.asarray(x)
    if arr.ndim != 3:
        raise ValueError(f"{name} must be a (C, H, W) array, got shape {arr.shape}")
    return arr


def im2col(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Extract convolution patches from a (C, H, W) array.

    Returns an array of shape ``(Ho, Wo, C, Hf, Wf)`` where each
    ``[y, x]`` slice is the input window that produces output ``(y, x)``.
    This layout maps directly onto the paper's terminology: a *window* is
    one ``[y, x]`` patch, a *brick* is 16 consecutive channels of it.
    """
    arr = _check_chw(x)
    hf, wf = kernel
    if padding:
        arr = np.pad(arr, ((0, 0), (padding, padding), (padding, padding)))
    eff_h = (hf - 1) * dilation + 1
    eff_w = (wf - 1) * dilation + 1
    if arr.shape[1] < eff_h or arr.shape[2] < eff_w:
        raise ValueError(
            f"input {arr.shape} too small for effective kernel ({eff_h}, {eff_w})"
        )
    win = sliding_window_view(arr, (eff_h, eff_w), axis=(1, 2))
    win = win[:, ::stride, ::stride, ::dilation, ::dilation]
    # (C, Ho, Wo, Hf, Wf) -> (Ho, Wo, C, Hf, Wf)
    return np.transpose(win, (1, 2, 0, 3, 4))


def conv2d_float(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Float convolution of a (C, H, W) input with (K, C, Hf, Wf) weights."""
    arr = _check_chw(x)
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 4 or w.shape[1] != arr.shape[0]:
        raise ValueError(
            f"weights must be (K, C={arr.shape[0]}, Hf, Wf), got {w.shape}"
        )
    k, c, hf, wf = w.shape
    cols = im2col(arr.astype(np.float64), (hf, wf), stride, padding, dilation)
    ho, wo = cols.shape[:2]
    flat = cols.reshape(ho * wo, c * hf * wf)
    out = flat @ w.reshape(k, c * hf * wf).T
    out = out.T.reshape(k, ho, wo)
    if bias is not None:
        out = out + np.asarray(bias, dtype=np.float64).reshape(-1, 1, 1)
    return out


def conv2d_int(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Exact integer convolution (wide accumulator), returned as ``int64``.

    ``x`` and ``weights`` are integer arrays (fixed-point mantissas).  The
    result is the exact sum of products, i.e. the accumulator contents
    before any requantization.
    """
    arr = _check_chw(x)
    w = np.asarray(weights)
    if not np.issubdtype(arr.dtype, np.integer) or not np.issubdtype(w.dtype, np.integer):
        raise TypeError("conv2d_int requires integer inputs and weights")
    terms = w.shape[1] * w.shape[2] * w.shape[3]
    max_prod = float(np.max(np.abs(arr), initial=0)) * float(np.max(np.abs(w), initial=0))
    if max_prod * terms >= _EXACT_FLOAT_LIMIT:
        raise OverflowError(
            "accumulation may exceed float64 exact-integer range; "
            f"max|product| * terms = {max_prod * terms:.3g}"
        )
    out = conv2d_float(
        arr.astype(np.float64), w.astype(np.float64), None, stride, padding, dilation
    )
    acc = out.astype(np.int64)
    if bias is not None:
        acc = acc + np.asarray(bias, dtype=np.int64).reshape(-1, 1, 1)
    return acc


def space_to_depth(x: np.ndarray, factor: int) -> np.ndarray:
    """Rearrange (C, H, W) -> (C * factor**2, H/factor, W/factor).

    FFDNet feeds the network a 2x2 pixel-shuffled input (4 image tiles
    stacked along the channel dimension); this implements that reshuffle.
    """
    arr = _check_chw(x)
    c, h, w = arr.shape
    if h % factor or w % factor:
        raise ValueError(f"spatial dims {(h, w)} not divisible by factor {factor}")
    out = arr.reshape(c, h // factor, factor, w // factor, factor)
    out = np.transpose(out, (2, 4, 0, 1, 3))
    return out.reshape(c * factor * factor, h // factor, w // factor)


def depth_to_space(x: np.ndarray, factor: int) -> np.ndarray:
    """Inverse of :func:`space_to_depth` (a.k.a. pixel shuffle)."""
    arr = _check_chw(x)
    c, h, w = arr.shape
    if c % (factor * factor):
        raise ValueError(f"channels {c} not divisible by factor**2 = {factor * factor}")
    out = arr.reshape(factor, factor, c // (factor * factor), h, w)
    out = np.transpose(out, (2, 3, 0, 4, 1))
    return out.reshape(c // (factor * factor), h * factor, w * factor)


def upsample_nearest(x: np.ndarray, factor: int) -> np.ndarray:
    """Nearest-neighbour upsampling of a (C, H, W) array."""
    arr = _check_chw(x)
    return np.repeat(np.repeat(arr, factor, axis=1), factor, axis=2)


def max_pool2d(x: np.ndarray, kernel: int, stride: int | None = None) -> np.ndarray:
    """Max pooling over a (C, H, W) array (valid padding)."""
    arr = _check_chw(x)
    stride = stride or kernel
    win = sliding_window_view(arr, (kernel, kernel), axis=(1, 2))
    win = win[:, ::stride, ::stride]
    return win.max(axis=(-1, -2))
