"""Latency/throughput telemetry for the serving simulation.

Built on :class:`repro.utils.timing.StreamingHistogram` rather than raw
sample lists: histograms are fixed-size no matter how long the run, they
merge exactly across workers (the same property the sweep runner's
per-process accumulators need), and their percentile estimates are
deterministic — which is what lets serving goldens be byte-identical.

One :class:`ServeTelemetry` instance records one engine's run; its
:meth:`snapshot` is the golden-serializable digest the experiment and
benchmark layers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.timing import StreamingHistogram

#: Latency bins: log-spaced from 100 µs to 1000 s.  Log spacing keeps
#: relative resolution constant (~5.6% per bin with 288 bins), so p99
#: estimates stay tight from millisecond to minute regimes.
LATENCY_LO_S = 1e-4
LATENCY_HI_S = 1e3
LATENCY_BINS = 288


def latency_histogram() -> StreamingHistogram:
    return StreamingHistogram(LATENCY_LO_S, LATENCY_HI_S, LATENCY_BINS, log=True)


def linear_histogram(hi: int) -> StreamingHistogram:
    """Unit-wide integer bins covering 0..hi (batch sizes, queue depths)."""
    return StreamingHistogram(-0.5, hi + 0.5, hi + 1, log=False)


@dataclass
class ServeTelemetry:
    """All counters and distributions of one simulated serving run."""

    max_batch: int
    queue_capacity: int
    latency: StreamingHistogram = field(default_factory=latency_histogram)
    batch_sizes: StreamingHistogram = field(init=False)
    queue_depths: StreamingHistogram = field(init=False)
    arrived: int = 0
    admitted: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0
    completed: int = 0
    good: int = 0  # completed within deadline
    late: int = 0  # completed but past deadline
    batches: int = 0
    busy_s: float = 0.0
    max_queue_depth: int = 0

    def __post_init__(self) -> None:
        self.batch_sizes = linear_histogram(self.max_batch)
        self.queue_depths = linear_histogram(self.queue_capacity)

    # ---- recording hooks -------------------------------------------------

    def on_arrival(self, admitted: bool, queue_depth: int) -> None:
        self.arrived += 1
        if admitted:
            self.admitted += 1
        else:
            self.shed_queue_full += 1
        self.queue_depths.record(queue_depth)
        self.max_queue_depth = max(self.max_queue_depth, queue_depth)

    def on_deadline_shed(self, count: int) -> None:
        self.shed_deadline += count

    def on_batch(self, size: int, service_s: float) -> None:
        self.batches += 1
        self.batch_sizes.record(size)
        self.busy_s += service_s

    def on_completion(self, latency_s: float, within_deadline: bool) -> None:
        self.completed += 1
        self.latency.record(latency_s)
        if within_deadline:
            self.good += 1
        else:
            self.late += 1

    # ---- vectorized hooks (fleet shard engine) ---------------------------

    def on_arrival_block(self, admitted_depths, shed: int) -> None:
        """Vectorized :meth:`on_arrival` for a run of busy-window arrivals.

        ``admitted_depths`` are the post-offer queue depths of the
        admitted requests (an increasing integer array — during a busy
        window the queue only grows); ``shed`` requests found the queue
        full, so their recorded depth is exactly ``queue_capacity``.
        Counter-for-counter identical to the per-arrival hook.
        """
        k = len(admitted_depths)
        self.arrived += k + shed
        self.admitted += k
        self.shed_queue_full += shed
        if k:
            self.queue_depths.record_values(admitted_depths)
            self.max_queue_depth = max(self.max_queue_depth, int(admitted_depths[-1]))
        if shed:
            self.queue_depths.record(float(self.queue_capacity), weight=shed)
            self.max_queue_depth = max(self.max_queue_depth, self.queue_capacity)

    def on_completion_block(self, latencies, good: int) -> None:
        """Vectorized :meth:`on_completion` for one completed batch.

        Histogram counts match a per-request loop exactly; only the
        float accumulation order of the latency *total* differs.
        """
        k = len(latencies)
        self.completed += k
        self.latency.record_values(latencies)
        self.good += good
        self.late += k - good

    # ---- derived metrics -------------------------------------------------

    @property
    def shed(self) -> int:
        return self.shed_queue_full + self.shed_deadline

    @property
    def shed_rate(self) -> float:
        return self.shed / self.arrived if self.arrived else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.batch_sizes.mean

    def goodput_rps(self, duration_s: float) -> float:
        return self.good / duration_s

    def merge(self, other: "ServeTelemetry") -> "ServeTelemetry":
        """Fold another run's telemetry in (sharded/partitioned serving)."""
        self.latency.merge(other.latency)
        self.batch_sizes.merge(other.batch_sizes)
        self.queue_depths.merge(other.queue_depths)
        for name in (
            "arrived",
            "admitted",
            "shed_queue_full",
            "shed_deadline",
            "completed",
            "good",
            "late",
            "batches",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.busy_s += other.busy_s
        self.max_queue_depth = max(self.max_queue_depth, other.max_queue_depth)
        return self

    def snapshot(self, duration_s: float, workers: int = 1) -> dict:
        """Golden-serializable digest of the run."""
        lat = self.latency.summary()
        return {
            "arrived": self.arrived,
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_deadline": self.shed_deadline,
            "shed_rate": self.shed_rate,
            "completed": self.completed,
            "good": self.good,
            "late": self.late,
            "goodput_rps": self.goodput_rps(duration_s),
            "latency_ms": {
                "mean": lat["mean"] * 1e3,
                "p50": lat["p50"] * 1e3,
                "p95": lat["p95"] * 1e3,
                "p99": lat["p99"] * 1e3,
                "max": lat["max"] * 1e3,
            },
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "max_queue_depth": self.max_queue_depth,
            "utilization": self.busy_s / (duration_s * workers) if duration_s else 0.0,
        }
