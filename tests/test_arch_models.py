"""Tests for the VAA, PRA, Diffy and SCNN cycle models."""

import dataclasses

import numpy as np
import pytest

from repro.arch.config import DIFFY_CONFIG, PRA_CONFIG, VAA_CONFIG
from repro.arch.diffy import DiffyModel
from repro.arch.pra import PRAModel
from repro.arch.scnn import SCNNModel, sparsify_weights
from repro.arch.vaa import VAAModel
from repro.utils.rng import rng_for


class TestVAA:
    def test_value_agnostic(self, dncnn_trace):
        """VAA cycles depend only on geometry, never on the values."""
        layer = dncnn_trace[3]
        cycles_a = VAAModel().layer_cycles(layer).cycles
        zeroed = dataclasses.replace(layer, imap=np.zeros_like(layer.imap))
        cycles_b = VAAModel().layer_cycles(zeroed).cycles
        assert cycles_a == cycles_b

    def test_cycle_formula(self, dncnn_trace):
        layer = dncnn_trace[3]  # 64 -> 64, 3x3
        got = VAAModel().layer_cycles(layer).cycles
        windows = layer.windows
        steps = 4 * 9  # ceil(64/16) bricks x 9 taps
        assert got == windows * steps  # one filter pass at K=64

    def test_first_layer_not_discounted(self, dncnn_trace):
        """3 input channels still burn a full brick step per tap."""
        layer = dncnn_trace[0]
        got = VAAModel().layer_cycles(layer)
        assert got.cycles == layer.windows * 9
        assert got.channel_occupancy == pytest.approx(3 / 16)


class TestPRADiffy:
    def test_pra_beats_vaa(self, dncnn_trace):
        for layer in list(dncnn_trace)[1:4]:
            vaa = VAAModel().layer_cycles(layer).cycles
            pra = PRAModel().layer_cycles(layer).cycles
            assert pra < vaa

    def test_diffy_beats_pra_on_correlated_layers(self, dncnn_trace):
        vaa_total = pra_total = diffy_total = 0.0
        for layer in dncnn_trace:
            vaa_total += VAAModel().layer_cycles(layer).cycles
            pra_total += PRAModel().layer_cycles(layer).cycles
            diffy_total += DiffyModel().layer_cycles(layer).cycles
        assert diffy_total < pra_total < vaa_total

    def test_zero_imap_is_nearly_free_for_pra(self, dncnn_trace):
        layer = dataclasses.replace(
            dncnn_trace[3], imap=np.zeros_like(dncnn_trace[3].imap)
        )
        assert PRAModel().layer_cycles(layer).cycles == 0.0

    def test_constant_imap_is_nearly_free_for_diffy(self, dncnn_trace):
        """A constant map has zero deltas everywhere except chain heads."""
        const = dataclasses.replace(
            dncnn_trace[3], imap=np.full_like(dncnn_trace[3].imap, 1234)
        )
        diffy = DiffyModel().layer_cycles(const).cycles
        pra = PRAModel().layer_cycles(const).cycles
        assert diffy < 0.25 * pra

    def test_diffy_equals_pra_on_uncorrelated_noise(self, dncnn_trace):
        """On white noise deltas are no smaller than raw values; Diffy's
        advantage must vanish (and may even invert slightly)."""
        rng = rng_for(0, "noise")
        noisy = dataclasses.replace(
            dncnn_trace[3],
            imap=rng.integers(0, 4000, dncnn_trace[3].imap.shape),
        )
        diffy = DiffyModel().layer_cycles(noisy).cycles
        pra = PRAModel().layer_cycles(noisy).cycles
        assert diffy > 0.85 * pra

    def test_diffy_axis_y(self, dncnn_trace):
        layer = dncnn_trace[3]
        dy = DiffyModel(axis="y").layer_cycles(layer).cycles
        dx = DiffyModel(axis="x").layer_cycles(layer).cycles
        # Both axes must deliver comparable benefit (Section III-C).
        assert 0.7 < dy / dx < 1.3

    def test_diffy_invalid_axis(self):
        with pytest.raises(ValueError):
            DiffyModel(axis="t")

    def test_reconstruction_adds(self, dncnn_trace):
        layer = dncnn_trace[3]
        adds = DiffyModel().reconstruction_adds(layer)
        k, h, w = layer.omap_shape
        assert adds == h * (w - 1) * k

    def test_sync_models_ordering(self, dncnn_trace):
        layer = dncnn_trace[3]
        results = {}
        for sync in ("row", "lane", "column", "pallet"):
            cfg = dataclasses.replace(PRA_CONFIG, sync=sync)
            results[sync] = PRAModel(cfg).layer_cycles(layer).cycles
        # More synchronization -> more cycles.
        assert results["row"] <= results["lane"]
        assert results["column"] <= results["pallet"]
        assert results["lane"] <= results["pallet"]

    def test_t1_closes_sync_gap(self, dncnn_trace):
        """Fig 16: T_1 eliminates cross-lane stalls, so Diffy's speedup over
        an equally scaled VAA grows."""
        layer = dncnn_trace[5]
        v16 = VAAModel().layer_cycles(layer).cycles
        d16 = DiffyModel().layer_cycles(layer).cycles
        v1 = VAAModel(VAA_CONFIG.with_terms(1)).layer_cycles(layer).cycles
        d1 = DiffyModel(DIFFY_CONFIG.with_terms(1)).layer_cycles(layer).cycles
        assert v1 / d1 > v16 / d16

    def test_utilization_bounded(self, dncnn_trace):
        for layer in dncnn_trace:
            rec = DiffyModel().layer_cycles(layer)
            assert 0.0 <= rec.utilization <= 1.0
            assert 0.0 <= rec.lane_occupancy <= 1.0


class TestSCNN:
    def test_dense_weights_speedup_from_act_sparsity(self, dncnn_trace):
        layer = dncnn_trace[3]
        vaa = VAAModel().layer_cycles(layer).cycles
        scnn = SCNNModel().layer_cycles(layer).cycles
        assert scnn < vaa  # activation sparsity alone helps

    def test_weight_sparsity_reduces_cycles(self, dncnn_trace):
        layer = dncnn_trace[3]
        dense = SCNNModel(0.0).layer_cycles(layer).cycles
        half = SCNNModel(0.5).layer_cycles(layer).cycles
        ninety = SCNNModel(0.9).layer_cycles(layer).cycles
        assert ninety < half < dense

    def test_names(self):
        assert SCNNModel(0.0).name == "SCNN"
        assert SCNNModel(0.5).name == "SCNN50"
        assert SCNNModel(0.75).name == "SCNN75"

    def test_sparsity_validated(self):
        with pytest.raises(ValueError):
            SCNNModel(1.0)

    def test_sparsify_weights(self):
        rng = rng_for(1, "sparse")
        w = rng.normal(size=(8, 8, 3, 3))
        sparse = sparsify_weights(w, 0.75, rng)
        assert abs((sparse == 0).mean() - 0.75) < 0.02
        # surviving weights unchanged
        mask = sparse != 0
        assert np.array_equal(sparse[mask], w[mask])

    def test_sparsify_validates(self):
        rng = rng_for(2, "sparse")
        with pytest.raises(ValueError):
            sparsify_weights(np.ones(4), 1.0, rng)

    def test_sparsify_keeps_existing_zeros(self):
        rng = rng_for(3, "sparse")
        w = np.zeros(100)
        w[:50] = 1.0
        sparse = sparsify_weights(w, 0.5, rng)
        assert (sparse == 0).sum() == 50
